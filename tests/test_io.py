"""Tests for VTK output, OBJ mesh I/O, and checkpoint/restore."""

import io

import numpy as np
import pytest

from repro import flagdefs as fl
from repro.balance import balance_forest
from repro.blocks import SetupBlockForest
from repro.comm import DistributedSimulation
from repro.core import Simulation
from repro.errors import GeometryError, ReproError
from repro.geometry import AABB, capped_tube, icosphere
from repro.io import (
    load_checkpoint,
    read_obj,
    save_checkpoint,
    write_obj,
    write_simulation_vtk,
    write_vtk,
)
from repro.lbm import NoSlip, TRT, UBB


class TestObj:
    def test_roundtrip_with_colors(self):
        m = capped_tube(
            (0, 0, 0), (0, 0, 3), 1.0, segments=8,
            start_cap_color=1, end_cap_color=2,
        )
        buf = io.StringIO()
        write_obj(m, buf)
        buf.seek(0)
        m2 = read_obj(buf)
        assert np.allclose(m.vertices, m2.vertices)
        assert np.array_equal(m.triangles, m2.triangles)
        assert np.array_equal(m.vertex_colors, m2.vertex_colors)

    def test_roundtrip_on_disk(self, tmp_path):
        m = icosphere((1, 2, 3), 0.5, 1)
        p = str(tmp_path / "sphere.obj")
        write_obj(m, p)
        m2 = read_obj(p)
        assert m2.n_triangles == m.n_triangles
        assert m2.is_watertight()

    def test_quad_faces_triangulated(self):
        obj = "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n"
        m = read_obj(io.StringIO(obj))
        assert m.n_triangles == 2

    def test_slash_references(self):
        obj = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1 2/2/2 3//3\n"
        m = read_obj(io.StringIO(obj))
        assert m.n_triangles == 1

    def test_negative_indices(self):
        obj = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n"
        m = read_obj(io.StringIO(obj))
        assert np.array_equal(m.triangles[0], [0, 1, 2])

    def test_errors(self):
        with pytest.raises(GeometryError):
            read_obj(io.StringIO("v 0 0 0\n"))  # no faces
        with pytest.raises(GeometryError):
            read_obj(io.StringIO("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 9\n"))
        with pytest.raises(GeometryError):
            read_obj(io.StringIO("v 0 0\nf 1 1 1\n"))


class TestVtk:
    def test_header_and_counts(self, tmp_path):
        p = str(tmp_path / "out.vtk")
        write_vtk(p, {"rho": np.ones((3, 4, 5))})
        lines = open(p).read().splitlines()
        assert lines[0].startswith("# vtk DataFile")
        assert "DIMENSIONS 3 4 5" in lines
        assert "POINT_DATA 60" in lines
        data = [v for line in lines[9:] for v in line.split()]
        # header contains "SCALARS rho..." + "LOOKUP_TABLE"; count floats
        floats = [v for v in data if v not in ("default",)]
        assert len([v for v in floats if _is_float(v)]) == 60

    def test_vector_field(self, tmp_path):
        p = str(tmp_path / "vec.vtk")
        u = np.zeros((2, 2, 2, 3))
        u[..., 1] = 7.0
        write_vtk(p, {"velocity": u})
        content = open(p).read()
        assert "VECTORS velocity double" in content
        assert "0 7 0" in content

    def test_nan_replaced(self, tmp_path):
        p = str(tmp_path / "nan.vtk")
        arr = np.full((2, 2, 2), np.nan)
        write_vtk(p, {"rho": arr})
        assert "nan" not in open(p).read()

    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            write_vtk(
                str(tmp_path / "x.vtk"),
                {"a": np.ones((2, 2, 2)), "b": np.ones((3, 3, 3))},
            )
        with pytest.raises(ReproError):
            write_vtk(str(tmp_path / "y.vtk"), {})

    def test_simulation_export(self, tmp_path):
        sim = Simulation(cells=(4, 4, 4), collision=TRT.from_tau(0.8))
        sim.flags.fill(fl.FLUID)
        sim.finalize()
        sim.run(2)
        p = str(tmp_path / "sim.vtk")
        write_simulation_vtk(p, sim)
        content = open(p).read()
        assert "density" in content and "velocity" in content and "fluid" in content


def _is_float(s):
    try:
        float(s)
        return True
    except ValueError:
        return False


def _cavity(steps=0):
    forest = SetupBlockForest.create(AABB((0, 0, 0), (2, 1, 1)), (2, 1, 1), (4, 4, 4))
    balance_forest(forest, 2, strategy="round_robin")

    def lid(blk, ff):
        d = ff.data
        i = blk.grid_index[0]
        if i == 0:
            d[0] = fl.NO_SLIP
        if i == 1:
            d[-1] = fl.NO_SLIP
        d[:, 0], d[:, -1] = fl.NO_SLIP, fl.NO_SLIP
        d[:, :, 0] = fl.NO_SLIP
        d[:, :, -1] = fl.VELOCITY_BC

    sim = DistributedSimulation(
        forest,
        TRT.from_tau(0.8),
        flag_setter=lid,
        boundaries=[NoSlip(), UBB(velocity=(0.05, 0.0, 0.0))],
    )
    if steps:
        sim.run(steps)
    return sim


class TestCheckpoint:
    def test_resume_is_bit_exact(self, tmp_path):
        p = str(tmp_path / "ckpt.npz")
        # Reference: 30 uninterrupted steps.
        ref = _cavity(30)
        # Checkpointed: 12 steps, save, restore into a new sim, 18 more.
        first = _cavity(12)
        save_checkpoint(first, p)
        resumed = _cavity(0)
        steps = load_checkpoint(resumed, p)
        assert steps == 12
        resumed.run(18)
        assert np.nanmax(np.abs(ref.gather_density() - resumed.gather_density())) == 0.0
        assert np.nanmax(np.abs(ref.gather_velocity() - resumed.gather_velocity())) == 0.0

    def test_wrong_forest_rejected(self, tmp_path):
        p = str(tmp_path / "ckpt.npz")
        save_checkpoint(_cavity(1), p)
        other = SetupBlockForest.create(
            AABB((0, 0, 0), (3, 1, 1)), (3, 1, 1), (4, 4, 4)
        )
        balance_forest(other, 3, strategy="round_robin")
        sim = DistributedSimulation(other, TRT.from_tau(0.8))
        with pytest.raises(ReproError):
            load_checkpoint(sim, p)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        p = str(tmp_path / "junk.npz")
        np.savez(p, a=np.zeros(3))
        with pytest.raises(ReproError):
            load_checkpoint(_cavity(0), p)


# ---------------------------------------------------------------------------
# Checkpoint format v2: round-trips for every state shape, corruption
# detection, atomicity, and RNG-state persistence (docs/resilience.md).
# ---------------------------------------------------------------------------

import os  # noqa: E402
import zipfile  # noqa: E402

from repro.errors import CheckpointError  # noqa: E402
from repro.io import (  # noqa: E402
    load_solver_checkpoint,
    read_state,
    save_solver_checkpoint,
    write_state,
)
from repro.lbm.cellstructured import CellStructuredSolver  # noqa: E402


def _single_block(steps=0):
    sim = Simulation(cells=(6, 6, 6), collision=TRT.from_tau(0.7))
    sim.flags.fill(fl.FLUID)
    d = sim.flags.data
    d[0] = d[-1] = fl.NO_SLIP
    d[:, 0] = d[:, -1] = fl.NO_SLIP
    d[:, :, 0] = fl.NO_SLIP
    d[:, :, -1] = fl.VELOCITY_BC
    sim.add_boundary(NoSlip())
    sim.add_boundary(UBB(velocity=(0.05, 0.0, 0.0)))
    sim.finalize()
    if steps:
        sim.run(steps)
    return sim


def _solver(steps=0):
    flags = np.full((6, 6, 6), fl.NO_SLIP, dtype=np.uint8)
    flags[1:-1, 1:-1, 1:-1] = fl.FLUID
    flags[:, :, -1] = fl.VELOCITY_BC
    s = CellStructuredSolver(
        flags, TRT.from_tau(0.7), wall_velocity=(0.05, 0.0, 0.0)
    )
    if steps:
        s.step(steps)
    return s


class TestCheckpointV2:
    def test_distributed_roundtrip_includes_flags(self, tmp_path):
        p = str(tmp_path / "c.npz")
        first = _cavity(9)
        save_checkpoint(first, p)
        resumed = _cavity(0)
        assert load_checkpoint(resumed, p) == 9
        for bid, rt_flags in resumed.flags.items():
            assert np.array_equal(rt_flags.data, first.flags[bid].data)
        for bid, f in resumed.fields.items():
            assert np.array_equal(f.src, first.fields[bid].src)

    def test_single_block_roundtrip(self, tmp_path):
        p = str(tmp_path / "c.npz")
        ref = _single_block(25)
        first = _single_block(10)
        save_checkpoint(first, p)
        resumed = _single_block(0)
        assert load_checkpoint(resumed, p) == 10
        resumed.run(15)
        a, b = ref.velocity(), resumed.velocity()
        assert np.array_equal(np.nan_to_num(a), np.nan_to_num(b))

    def test_single_block_timeloop_hook(self, tmp_path):
        """enable_checkpointing() writes on schedule; restart() resumes
        bit-identically."""
        p = str(tmp_path / "auto.npz")
        ref = _single_block(20)
        sim = _single_block(0)
        sim.enable_checkpointing(p, every=6)
        sim.run(14)          # checkpoints after steps 6 and 12
        _, step, _ = read_state(p)
        assert step == 12
        resumed = _single_block(0)
        assert resumed.restart(p) == 12
        resumed.run(8)
        a, b = ref.velocity(), resumed.velocity()
        assert np.array_equal(np.nan_to_num(a), np.nan_to_num(b))

    def test_cellstructured_roundtrip(self, tmp_path):
        p = str(tmp_path / "cs.npz")
        ref = _solver(20)
        first = _solver(8)
        save_solver_checkpoint(first, p)
        resumed = _solver(0)
        assert load_solver_checkpoint(resumed, p) == 8
        resumed.step(12)
        assert np.array_equal(ref.f, resumed.f)

    def test_cellstructured_structure_mismatch(self, tmp_path):
        p = str(tmp_path / "cs.npz")
        save_solver_checkpoint(_solver(1), p)
        flags = np.full((7, 6, 6), fl.NO_SLIP, dtype=np.uint8)
        flags[1:-1, 1:-1, 1:-1] = fl.FLUID
        other = CellStructuredSolver(flags, TRT.from_tau(0.7))
        with pytest.raises(CheckpointError):
            load_solver_checkpoint(other, p)

    def test_rng_state_roundtrip(self, tmp_path):
        p = str(tmp_path / "c.npz")
        sim = _cavity(3)
        rng = np.random.default_rng(1234)
        rng.random(17)                       # advance the stream
        save_checkpoint(sim, p, rng=rng)
        expected = rng.random(5)             # continues past the save
        rng2 = np.random.default_rng(0)      # different state
        load_checkpoint(_cavity(0), p, rng=rng2)
        assert np.array_equal(rng2.random(5), expected)

    def test_v1_checkpoints_still_load(self, tmp_path):
        """Backwards compatibility with the pre-resilience format."""
        p = str(tmp_path / "v1.npz")
        first = _cavity(5)
        blocks = sorted(first.fields, key=str)
        data = {"__meta__": np.array([1, 5, len(blocks)], dtype=np.int64)}
        for bid in blocks:
            data[str(bid)] = first.fields[bid].src   # v1: bare keys, no flags
        np.savez(p, **data)
        resumed = _cavity(0)
        assert load_checkpoint(resumed, p) == 5
        for bid, f in resumed.fields.items():
            assert np.array_equal(f.src, first.fields[bid].src)


class TestCheckpointCorruption:
    def test_truncated_file_detected(self, tmp_path):
        p = str(tmp_path / "c.npz")
        save_checkpoint(_cavity(2), p)
        raw = open(p, "rb").read()
        open(p, "wb").write(raw[: len(raw) // 2])
        with pytest.raises((CheckpointError, FileNotFoundError)) as ei:
            load_checkpoint(_cavity(0), p)
        assert isinstance(ei.value, CheckpointError)

    def test_flipped_payload_bytes_fail_crc(self, tmp_path):
        """A bit flip inside a stored array is caught by the per-array
        CRC even when the zip container still parses."""
        p = str(tmp_path / "c.npz")
        save_checkpoint(_cavity(2), p)
        # Rewrite the archive, corrupting one pdf member's payload.
        corrupted = str(tmp_path / "bad.npz")
        with zipfile.ZipFile(p) as zin, zipfile.ZipFile(
            corrupted, "w", zipfile.ZIP_STORED
        ) as zout:
            for info in zin.infolist():
                buf = bytearray(zin.read(info.filename))
                if info.filename.startswith("pdf"):
                    buf[len(buf) // 2] ^= 0xFF
                zout.writestr(info.filename, bytes(buf))
        with pytest.raises(CheckpointError, match="checksum|corrupt"):
            load_checkpoint(_cavity(0), corrupted)

    def test_junk_npz_rejected_typed(self, tmp_path):
        p = str(tmp_path / "junk.npz")
        np.savez(p, a=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_checkpoint(_cavity(0), p)
        with pytest.raises(CheckpointError):
            read_state(p)

    def test_not_a_zip_rejected_typed(self, tmp_path):
        p = str(tmp_path / "garbage.npz")
        open(p, "wb").write(b"this is not a zip archive")
        with pytest.raises(CheckpointError):
            read_state(p)

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_state(str(tmp_path / "absent.npz"))

    def test_checkpoint_error_is_typed(self):
        from repro.errors import FileFormatError

        assert issubclass(CheckpointError, FileFormatError)
        assert issubclass(CheckpointError, ReproError)


class TestCheckpointAtomicity:
    def test_no_tmp_residue_after_save(self, tmp_path):
        p = str(tmp_path / "c.npz")
        save_checkpoint(_cavity(1), p)
        save_checkpoint(_cavity(2), p)      # overwrite is atomic too
        assert os.listdir(str(tmp_path)) == ["c.npz"]

    def test_failed_write_leaves_previous_checkpoint_intact(self, tmp_path):
        p = str(tmp_path / "c.npz")
        write_state(p, {"x": np.arange(4.0)}, step=7)
        with pytest.raises(CheckpointError):
            write_state(p, {"__meta_json__": np.zeros(1)}, step=8)
        arrays, step, _ = read_state(p)
        assert step == 7 and np.array_equal(arrays["x"], np.arange(4.0))
        assert sorted(os.listdir(str(tmp_path))) == ["c.npz"]
