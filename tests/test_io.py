"""Tests for VTK output, OBJ mesh I/O, and checkpoint/restore."""

import io

import numpy as np
import pytest

from repro import flagdefs as fl
from repro.balance import balance_forest
from repro.blocks import SetupBlockForest
from repro.comm import DistributedSimulation
from repro.core import Simulation
from repro.errors import GeometryError, ReproError
from repro.geometry import AABB, capped_tube, icosphere
from repro.io import (
    load_checkpoint,
    read_obj,
    save_checkpoint,
    write_obj,
    write_simulation_vtk,
    write_vtk,
)
from repro.lbm import NoSlip, TRT, UBB


class TestObj:
    def test_roundtrip_with_colors(self):
        m = capped_tube(
            (0, 0, 0), (0, 0, 3), 1.0, segments=8,
            start_cap_color=1, end_cap_color=2,
        )
        buf = io.StringIO()
        write_obj(m, buf)
        buf.seek(0)
        m2 = read_obj(buf)
        assert np.allclose(m.vertices, m2.vertices)
        assert np.array_equal(m.triangles, m2.triangles)
        assert np.array_equal(m.vertex_colors, m2.vertex_colors)

    def test_roundtrip_on_disk(self, tmp_path):
        m = icosphere((1, 2, 3), 0.5, 1)
        p = str(tmp_path / "sphere.obj")
        write_obj(m, p)
        m2 = read_obj(p)
        assert m2.n_triangles == m.n_triangles
        assert m2.is_watertight()

    def test_quad_faces_triangulated(self):
        obj = "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n"
        m = read_obj(io.StringIO(obj))
        assert m.n_triangles == 2

    def test_slash_references(self):
        obj = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1 2/2/2 3//3\n"
        m = read_obj(io.StringIO(obj))
        assert m.n_triangles == 1

    def test_negative_indices(self):
        obj = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n"
        m = read_obj(io.StringIO(obj))
        assert np.array_equal(m.triangles[0], [0, 1, 2])

    def test_errors(self):
        with pytest.raises(GeometryError):
            read_obj(io.StringIO("v 0 0 0\n"))  # no faces
        with pytest.raises(GeometryError):
            read_obj(io.StringIO("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 9\n"))
        with pytest.raises(GeometryError):
            read_obj(io.StringIO("v 0 0\nf 1 1 1\n"))


class TestVtk:
    def test_header_and_counts(self, tmp_path):
        p = str(tmp_path / "out.vtk")
        write_vtk(p, {"rho": np.ones((3, 4, 5))})
        lines = open(p).read().splitlines()
        assert lines[0].startswith("# vtk DataFile")
        assert "DIMENSIONS 3 4 5" in lines
        assert "POINT_DATA 60" in lines
        data = [v for line in lines[9:] for v in line.split()]
        # header contains "SCALARS rho..." + "LOOKUP_TABLE"; count floats
        floats = [v for v in data if v not in ("default",)]
        assert len([v for v in floats if _is_float(v)]) == 60

    def test_vector_field(self, tmp_path):
        p = str(tmp_path / "vec.vtk")
        u = np.zeros((2, 2, 2, 3))
        u[..., 1] = 7.0
        write_vtk(p, {"velocity": u})
        content = open(p).read()
        assert "VECTORS velocity double" in content
        assert "0 7 0" in content

    def test_nan_replaced(self, tmp_path):
        p = str(tmp_path / "nan.vtk")
        arr = np.full((2, 2, 2), np.nan)
        write_vtk(p, {"rho": arr})
        assert "nan" not in open(p).read()

    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            write_vtk(
                str(tmp_path / "x.vtk"),
                {"a": np.ones((2, 2, 2)), "b": np.ones((3, 3, 3))},
            )
        with pytest.raises(ReproError):
            write_vtk(str(tmp_path / "y.vtk"), {})

    def test_simulation_export(self, tmp_path):
        sim = Simulation(cells=(4, 4, 4), collision=TRT.from_tau(0.8))
        sim.flags.fill(fl.FLUID)
        sim.finalize()
        sim.run(2)
        p = str(tmp_path / "sim.vtk")
        write_simulation_vtk(p, sim)
        content = open(p).read()
        assert "density" in content and "velocity" in content and "fluid" in content


def _is_float(s):
    try:
        float(s)
        return True
    except ValueError:
        return False


def _cavity(steps=0):
    forest = SetupBlockForest.create(AABB((0, 0, 0), (2, 1, 1)), (2, 1, 1), (4, 4, 4))
    balance_forest(forest, 2, strategy="round_robin")

    def lid(blk, ff):
        d = ff.data
        i = blk.grid_index[0]
        if i == 0:
            d[0] = fl.NO_SLIP
        if i == 1:
            d[-1] = fl.NO_SLIP
        d[:, 0], d[:, -1] = fl.NO_SLIP, fl.NO_SLIP
        d[:, :, 0] = fl.NO_SLIP
        d[:, :, -1] = fl.VELOCITY_BC

    sim = DistributedSimulation(
        forest,
        TRT.from_tau(0.8),
        flag_setter=lid,
        boundaries=[NoSlip(), UBB(velocity=(0.05, 0.0, 0.0))],
    )
    if steps:
        sim.run(steps)
    return sim


class TestCheckpoint:
    def test_resume_is_bit_exact(self, tmp_path):
        p = str(tmp_path / "ckpt.npz")
        # Reference: 30 uninterrupted steps.
        ref = _cavity(30)
        # Checkpointed: 12 steps, save, restore into a new sim, 18 more.
        first = _cavity(12)
        save_checkpoint(first, p)
        resumed = _cavity(0)
        steps = load_checkpoint(resumed, p)
        assert steps == 12
        resumed.run(18)
        assert np.nanmax(np.abs(ref.gather_density() - resumed.gather_density())) == 0.0
        assert np.nanmax(np.abs(ref.gather_velocity() - resumed.gather_velocity())) == 0.0

    def test_wrong_forest_rejected(self, tmp_path):
        p = str(tmp_path / "ckpt.npz")
        save_checkpoint(_cavity(1), p)
        other = SetupBlockForest.create(
            AABB((0, 0, 0), (3, 1, 1)), (3, 1, 1), (4, 4, 4)
        )
        balance_forest(other, 3, strategy="round_robin")
        sim = DistributedSimulation(other, TRT.from_tau(0.8))
        with pytest.raises(ReproError):
            load_checkpoint(sim, p)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        p = str(tmp_path / "junk.npz")
        np.savez(p, a=np.zeros(3))
        with pytest.raises(ReproError):
            load_checkpoint(_cavity(0), p)
