"""Tests for the SPMD message-passing simulation and the parallel setup
algorithms of §2.3, asserting exact agreement with the sequential and
direct-copy implementations."""

import io

import numpy as np
import pytest

from repro import flagdefs as fl
from repro.balance import balance_forest
from repro.blocks import (
    SetupBlockForest,
    broadcast_load_forest,
    classify_blocks_parallel,
    save_forest,
    view_for_rank,
)
from repro.comm import (
    DistributedSimulation,
    VirtualMPI,
    run_spmd_simulation,
)
from repro.errors import CommunicationError, PartitioningError
from repro.geometry import AABB, CapsuleTreeGeometry, CoronaryTree
from repro.lbm import NoSlip, PressureABB, TRT, UBB


def lid_setter(grid):
    gx, gy, gz = grid

    def setter(blk, ff):
        d = ff.data
        i, j, k = blk.grid_index
        if i == 0:
            d[0] = fl.NO_SLIP
        if i == gx - 1:
            d[-1] = fl.NO_SLIP
        if j == 0:
            d[:, 0] = fl.NO_SLIP
        if j == gy - 1:
            d[:, -1] = fl.NO_SLIP
        if k == 0:
            d[:, :, 0] = fl.NO_SLIP
        if k == gz - 1:
            d[:, :, -1] = fl.VELOCITY_BC

    return setter


class TestViewForRank:
    def test_matches_distribute(self):
        from repro.blocks import distribute

        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2, 2, 1)), (2, 2, 1), (4, 4, 4)
        )
        balance_forest(forest, 2, strategy="round_robin")
        all_views = distribute(forest)
        for rank in range(2):
            single = view_for_rank(forest, rank)
            assert [b.id for b in single.blocks] == [
                b.id for b in all_views[rank].blocks
            ]
            assert single.neighbor_ranks() == all_views[rank].neighbor_ranks()

    def test_unbalanced_rejected(self):
        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2, 1, 1)), (2, 1, 1), (4, 4, 4)
        )
        with pytest.raises(PartitioningError):
            view_for_rank(forest, 0)

    def test_bad_rank_rejected(self):
        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2, 1, 1)), (2, 1, 1), (4, 4, 4)
        )
        balance_forest(forest, 2, strategy="round_robin")
        with pytest.raises(PartitioningError):
            view_for_rank(forest, 5)


class TestSpmdSimulation:
    def test_identical_to_direct_copy_cavity(self):
        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2, 2, 2)), (2, 2, 2), (4, 4, 4)
        )
        balance_forest(forest, 4, strategy="round_robin")
        bcs = [NoSlip(), UBB(velocity=(0.05, 0.0, 0.0))]
        col = TRT.from_tau(0.8)
        setter = lid_setter((2, 2, 2))
        ref = DistributedSimulation(forest, col, flag_setter=setter, boundaries=bcs)
        ref.run(15)
        world = VirtualMPI(4, timeout=120)
        result = run_spmd_simulation(
            world, forest, col, 15, conditions=bcs, flag_setter=setter
        )
        assert set(result) == set(ref.fields)
        for key, arr in result.items():
            assert np.array_equal(arr, ref.fields[key].interior_view)

    def test_identical_on_coronary_geometry(self):
        tree = CoronaryTree.generate(generations=3, seed=4)
        geom = CapsuleTreeGeometry(tree)
        forest = SetupBlockForest.create(
            geom.aabb(), (3, 3, 3), (8, 8, 8), geometry=geom
        )
        balance_forest(forest, 3, strategy="morton")
        bcs = [NoSlip(), UBB(velocity=(0.0, 0.0, 0.01)), PressureABB(rho_w=1.0)]
        col = TRT.from_tau(0.8)
        ref = DistributedSimulation(forest, col, geometry=geom, boundaries=bcs)
        ref.run(5)
        world = VirtualMPI(3, timeout=180)
        result = run_spmd_simulation(
            world, forest, col, 5, conditions=bcs, geometry=geom
        )
        for key, arr in result.items():
            assert np.array_equal(arr, ref.fields[key].interior_view)

    def test_world_size_mismatch_rejected(self):
        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2, 1, 1)), (2, 1, 1), (4, 4, 4)
        )
        balance_forest(forest, 2, strategy="round_robin")
        with pytest.raises(CommunicationError):
            run_spmd_simulation(VirtualMPI(3, timeout=10), forest, TRT.from_tau(0.8), 1)


class TestParallelSetup:
    @pytest.fixture(scope="class")
    def geom(self):
        return CapsuleTreeGeometry(CoronaryTree.generate(generations=3, seed=7))

    def test_matches_sequential(self, geom):
        box = geom.aabb()
        seq = SetupBlockForest.create(box, (4, 4, 4), (8, 8, 8), geometry=geom)
        par = classify_blocks_parallel(
            VirtualMPI(4, timeout=120), box, (4, 4, 4), (8, 8, 8), lambda: geom
        )
        assert [b.id for b in par.blocks] == [b.id for b in seq.blocks]
        assert [b.fluid_cells for b in par.blocks] == [
            b.fluid_cells for b in seq.blocks
        ]
        assert [b.coverage for b in par.blocks] == [b.coverage for b in seq.blocks]

    def test_rank_count_invariance(self, geom):
        # The result must not depend on how many ranks classified it.
        box = geom.aabb()
        a = classify_blocks_parallel(
            VirtualMPI(2, timeout=120), box, (3, 3, 3), (8, 8, 8), lambda: geom
        )
        b = classify_blocks_parallel(
            VirtualMPI(7, timeout=120), box, (3, 3, 3), (8, 8, 8), lambda: geom
        )
        assert [blk.id for blk in a.blocks] == [blk.id for blk in b.blocks]

    def test_broadcast_load(self, tmp_path, geom):
        forest = SetupBlockForest.create(
            geom.aabb(), (3, 3, 3), (8, 8, 8), geometry=geom
        )
        balance_forest(forest, 4, strategy="morton")
        path = str(tmp_path / "forest.wbf")
        save_forest(forest, path)
        world = VirtualMPI(4, timeout=60)

        def program(comm):
            # Only rank 0 gets the path — everyone must still end up with
            # the forest (via broadcast of the raw bytes).
            f = broadcast_load_forest(comm, path if comm.rank == 0 else None)
            return (f.n_blocks, f.n_processes)

        results = world.run(program)
        assert results == [(forest.n_blocks, 4)] * 4
