"""Boundary condition tests: link construction and physical behaviour."""

import numpy as np
import pytest

from repro import flagdefs as fl
from repro.core.flags import FlagField
from repro.errors import ConfigurationError
from repro.lbm.boundary import BoundaryHandling, NoSlip, PressureABB, UBB
from repro.lbm.collision import SRT, TRT
from repro.lbm.equilibrium import equilibrium
from repro.lbm.kernels import make_kernel
from repro.lbm.lattice import D3Q19

from helpers import interior


def make_channel_flags(cells):
    """Fluid interior, no-slip walls in the ghost layer on y and z faces."""
    ff = FlagField(cells)
    ff.fill(fl.FLUID)
    d = ff.data
    d[:, 0, :] = fl.NO_SLIP
    d[:, -1, :] = fl.NO_SLIP
    d[:, :, 0] = fl.NO_SLIP
    d[:, :, -1] = fl.NO_SLIP
    return ff


class TestLinkConstruction:
    def test_single_fluid_cell_fully_enclosed(self):
        ff = FlagField((1, 1, 1))
        ff.fill(fl.FLUID)
        ff.data[ff.data == 0] = fl.NO_SLIP
        bh = BoundaryHandling(D3Q19, ff, [NoSlip()])
        # Every non-rest direction has exactly one wall link.
        assert bh.link_count == 18

    def test_no_walls_no_links(self):
        ff = FlagField((3, 3, 3))
        ff.fill(fl.FLUID)
        bh = BoundaryHandling(D3Q19, ff, [NoSlip()])
        assert bh.link_count == 0

    def test_duplicate_flag_rejected(self):
        ff = FlagField((2, 2, 2))
        ff.fill(fl.FLUID)
        with pytest.raises(ConfigurationError):
            BoundaryHandling(D3Q19, ff, [NoSlip(), NoSlip()])


class TestNoSlip:
    def test_reflection_reverses_pulse(self):
        # One fluid cell enclosed in walls: after boundary apply + kernel
        # step, an outgoing population returns reversed.
        cells = (1, 1, 1)
        ff = FlagField(cells)
        ff.fill(fl.FLUID)
        ff.data[ff.data == 0] = fl.NO_SLIP
        bh = BoundaryHandling(D3Q19, ff, [NoSlip()])
        src = np.zeros((19, 3, 3, 3))
        shape = src.shape[1:]
        src[...] = equilibrium(
            D3Q19, np.ones(shape), np.zeros(shape + (3,))
        )
        a = D3Q19.direction_index(1, 0, 0)
        abar = int(D3Q19.inverse[a])
        src[a, 1, 1, 1] += 0.1  # extra outgoing momentum in +x
        dst = np.zeros_like(src)
        bh.apply(src)
        make_kernel("d3q19", D3Q19, SRT(tau=1e9), (1, 1, 1))(src, dst)
        # The extra mass pulled from the +x wall went into direction -x.
        assert dst[abar, 1, 1, 1] > src[abar, 1, 1, 1] + 0.05

    def test_mass_conserved_in_closed_box(self):
        cells = (4, 4, 4)
        ff = FlagField(cells)
        ff.fill(fl.FLUID)
        ff.data[ff.data == 0] = fl.NO_SLIP
        bh = BoundaryHandling(D3Q19, ff, [NoSlip()])
        rng = np.random.default_rng(3)
        src = np.zeros((19, 6, 6, 6))
        shape = src.shape[1:]
        u0 = 0.05 * (rng.random(shape + (3,)) - 0.5)
        src[...] = equilibrium(D3Q19, np.ones(shape), u0)
        dst = np.zeros_like(src)
        kern = make_kernel("vectorized", D3Q19, TRT.from_tau(0.8), cells)
        mask = ff.fluid_mask()
        m0 = interior(src)[:, mask].sum()
        for _ in range(20):
            bh.apply(src)
            kern(src, dst)
            src, dst = dst, src
        m1 = interior(src)[:, mask].sum()
        assert np.isclose(m1, m0, rtol=1e-12)


class TestUBB:
    def test_moving_wall_injects_momentum(self):
        cells = (4, 4, 4)
        ff = FlagField(cells)
        ff.fill(fl.FLUID)
        d = ff.data
        d[0], d[-1] = fl.NO_SLIP, fl.NO_SLIP
        d[:, 0], d[:, -1] = fl.NO_SLIP, fl.NO_SLIP
        d[:, :, 0] = fl.NO_SLIP
        d[:, :, -1] = fl.VELOCITY_BC
        bh = BoundaryHandling(
            D3Q19, ff, [NoSlip(), UBB(velocity=(0.05, 0.0, 0.0))]
        )
        src = np.zeros((19, 6, 6, 6))
        shape = src.shape[1:]
        src[...] = equilibrium(D3Q19, np.ones(shape), np.zeros(shape + (3,)))
        dst = np.zeros_like(src)
        kern = make_kernel("vectorized", D3Q19, TRT.from_tau(0.8), cells)
        for _ in range(10):
            bh.apply(src)
            kern(src, dst)
            src, dst = dst, src
        e = D3Q19.velocities.astype(float)
        jx = np.tensordot(interior(src), e[:, 0], axes=(0, 0))
        # Net +x momentum appears, strongest near the moving lid (z = max).
        assert jx[:, :, -1].mean() > 1e-4
        assert jx[:, :, -1].mean() > jx[:, :, 0].mean()

    def test_wrong_velocity_dim_rejected(self):
        cells = (2, 2, 2)
        ff = FlagField(cells)
        ff.fill(fl.FLUID)
        ff.data[:, :, 0] = fl.VELOCITY_BC
        bh = BoundaryHandling(D3Q19, ff, [UBB(velocity=(0.1, 0.0))])
        src = np.zeros((19, 4, 4, 4))
        with pytest.raises(ConfigurationError):
            bh.apply(src)


class TestPressureABB:
    def test_prescribed_density_pulls_towards_rho_w(self):
        # A box at rho = 1 with one pressure face at rho_w = 1.02: density
        # near that face must rise.
        cells = (4, 4, 8)
        ff = FlagField(cells)
        ff.fill(fl.FLUID)
        d = ff.data
        d[0], d[-1] = fl.NO_SLIP, fl.NO_SLIP
        d[:, 0], d[:, -1] = fl.NO_SLIP, fl.NO_SLIP
        d[:, :, -1] = fl.NO_SLIP
        d[:, :, 0] = fl.PRESSURE_BC
        bh = BoundaryHandling(D3Q19, ff, [NoSlip(), PressureABB(rho_w=1.02)])
        src = np.zeros((19, 6, 6, 10))
        shape = src.shape[1:]
        src[...] = equilibrium(D3Q19, np.ones(shape), np.zeros(shape + (3,)))
        dst = np.zeros_like(src)
        kern = make_kernel("vectorized", D3Q19, TRT.from_tau(0.8), cells)
        for _ in range(10):
            bh.apply(src)
            kern(src, dst)
            src, dst = dst, src
        rho = interior(src).sum(axis=0)
        near = rho[:, :, 0].mean()
        far = rho[:, :, -1].mean()
        assert near > 1.005
        assert near > far
