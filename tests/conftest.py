"""Pytest configuration: make tests/ importable for the helpers module."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
