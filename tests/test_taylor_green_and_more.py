"""Taylor-Green vortex decay (quantitative viscosity validation), 2-D
D2Q9 simulations, the stability guard, dynamic rebalancing, and the
timing report."""

import numpy as np
import pytest

from repro import flagdefs as fl
from repro.balance import balance_forest, rebalance
from repro.blocks import SetupBlockForest
from repro.core import Simulation
from repro.errors import LoadBalanceError, NumericalError
from repro.geometry import AABB
from repro.lbm import D2Q9, NoSlip, SRT, TRT, UBB
from repro.lbm.equilibrium import equilibrium


class TestTaylorGreen:
    """The 2-D Taylor-Green vortex (in a 3-D periodic box, k_z = 0)
    decays as exp(-2 nu k^2 t): the measured decay rate *is* the
    kinematic viscosity, validating the collision operator's transport
    coefficient."""

    @pytest.mark.parametrize("tau", [0.65, 0.9])
    def test_viscosity_from_decay(self, tau):
        n = 24
        u0 = 0.02
        nu = (tau - 0.5) / 3.0
        sim = Simulation(
            cells=(n, n, n),
            collision=TRT.srt_equivalent(tau),
            periodic=(True, True, True),
        )
        sim.flags.fill(fl.FLUID)
        sim.finalize()
        # Overwrite the uniform initialization with the vortex.
        k = 2.0 * np.pi / n
        shape = sim.pdfs.padded_shape
        idx = [np.arange(-1, n + 1) + 0.5 for _ in range(3)]
        X, Y, _Z = np.meshgrid(*idx, indexing="ij")
        u = np.zeros(shape + (3,))
        u[..., 0] = u0 * np.sin(k * X) * np.cos(k * Y)
        u[..., 1] = -u0 * np.cos(k * X) * np.sin(k * Y)
        rho = np.ones(shape)
        sim.pdfs.src[...] = equilibrium(sim.model, rho, u)
        sim.pdfs.dst[...] = sim.pdfs.src

        steps = 120
        a0 = np.nanmax(np.abs(sim.velocity()[..., 0]))
        sim.run(steps)
        a1 = np.nanmax(np.abs(sim.velocity()[..., 0]))
        # amplitude ~ exp(-2 nu k^2 t)
        nu_measured = -np.log(a1 / a0) / (2.0 * k**2 * steps)
        assert nu_measured == pytest.approx(nu, rel=0.03)

    def test_vortex_structure_preserved(self):
        n = 16
        sim = Simulation(
            cells=(n, n, n), collision=SRT(0.8), periodic=(True, True, True)
        )
        sim.flags.fill(fl.FLUID)
        sim.finalize()
        k = 2.0 * np.pi / n
        shape = sim.pdfs.padded_shape
        idx = [np.arange(-1, n + 1) + 0.5 for _ in range(3)]
        X, Y, _Z = np.meshgrid(*idx, indexing="ij")
        u = np.zeros(shape + (3,))
        u[..., 0] = 0.02 * np.sin(k * X) * np.cos(k * Y)
        u[..., 1] = -0.02 * np.cos(k * X) * np.sin(k * Y)
        sim.pdfs.src[...] = equilibrium(sim.model, np.ones(shape), u)
        sim.pdfs.dst[...] = sim.pdfs.src
        u_before = sim.velocity()
        sim.run(50)
        u_after = sim.velocity()
        # The pattern only shrinks; the normalized fields stay aligned.
        corr = np.nansum(u_before[..., 0] * u_after[..., 0])
        norm = np.sqrt(
            np.nansum(u_before[..., 0] ** 2) * np.nansum(u_after[..., 0] ** 2)
        )
        assert corr / norm > 0.999


class TestD2Q9Simulation:
    def test_2d_couette(self):
        U, ny = 0.05, 8
        sim = Simulation(
            cells=(6, ny),
            collision=TRT.from_tau(0.9),
            model=D2Q9,
            kernel="generic",
            periodic=(True, False),
        )
        sim.flags.fill(fl.FLUID)
        sim.flags.data[:, 0] = fl.NO_SLIP
        sim.flags.data[:, -1] = fl.VELOCITY_BC
        sim.add_boundary(NoSlip())
        sim.add_boundary(UBB(velocity=(U, 0.0)))
        sim.finalize()
        sim.run(2000)
        ux = sim.velocity()[3, :, 0]
        expected = U * (np.arange(ny) + 0.5) / ny
        assert np.allclose(ux, expected, atol=3e-4)

    def test_2d_mass_conservation(self):
        sim = Simulation(
            cells=(8, 8), collision=SRT(0.8), model=D2Q9, kernel="generic"
        )
        sim.flags.fill(fl.FLUID)
        sim.flags.data[sim.flags.data == 0] = fl.NO_SLIP
        sim.add_boundary(NoSlip())
        sim.finalize()
        m0 = sim.total_mass()
        sim.run(50)
        assert np.isclose(sim.total_mass(), m0, rtol=1e-12)


class TestStabilityGuard:
    def test_divergence_detected(self):
        sim = Simulation(
            cells=(6, 6, 6),
            collision=SRT(0.51),
            body_force=(0.5, 0.0, 0.0),
            periodic=(True, True, True),
        )
        sim.flags.fill(fl.FLUID)
        sim.finalize()
        with pytest.raises(NumericalError):
            sim.run(500, check_every=10)

    def test_stable_run_passes(self):
        sim = Simulation(cells=(6, 6, 6), collision=TRT.from_tau(0.8))
        sim.flags.fill(fl.FLUID)
        sim.flags.data[sim.flags.data == 0] = fl.NO_SLIP
        sim.add_boundary(NoSlip())
        sim.finalize()
        sim.run(30, check_every=10)
        sim.assert_stable()

    def test_distributed_guard(self):
        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2, 1, 1)), (2, 1, 1), (4, 4, 4)
        )
        balance_forest(forest, 2, strategy="round_robin")
        from repro.comm import DistributedSimulation

        sim = DistributedSimulation(forest, TRT.from_tau(0.8))
        sim.run(5, check_every=2)
        sim.assert_stable()
        # Corrupt a block and confirm detection.
        next(iter(sim.fields.values())).src[0, 2, 2, 2] = np.nan
        with pytest.raises(NumericalError):
            sim.assert_stable()


class TestRebalance:
    @pytest.fixture
    def forest(self):
        f = SetupBlockForest.create(AABB((0, 0, 0), (4, 4, 4)), (4, 4, 4), (8, 8, 8))
        balance_forest(f, 8, strategy="morton")
        return f

    def test_improves_skewed_loads(self, forest):
        loads = np.ones(forest.n_blocks)
        for i, b in enumerate(forest.blocks):
            if b.owner == 0:
                loads[i] = 5.0
        res = rebalance(forest, loads)
        assert res.imbalance_after < res.imbalance_before
        assert res.imbalance_after < 1.2

    def test_applies_owners(self, forest):
        loads = np.linspace(1.0, 3.0, forest.n_blocks)
        res = rebalance(forest, loads, apply=True)
        assert tuple(b.owner for b in forest.blocks) == res.owners

    def test_balanced_loads_move_little(self, forest):
        # Already balanced: relabeling keeps most blocks in place.
        loads = np.ones(forest.n_blocks)
        res = rebalance(forest, loads, apply=False)
        assert res.n_migrations < forest.n_blocks * 0.8

    def test_errors(self, forest):
        with pytest.raises(LoadBalanceError):
            rebalance(forest, np.ones(3))
        with pytest.raises(LoadBalanceError):
            rebalance(forest, np.zeros(forest.n_blocks))


class TestTimingReport:
    def test_report_contains_sweeps(self):
        sim = Simulation(cells=(4, 4, 4), collision=SRT(0.8))
        sim.flags.fill(fl.FLUID)
        sim.finalize()
        sim.run(3)
        rep = sim.timeloop.report()
        assert "kernel" in rep and "3 steps" in rep
        assert "%" in rep
