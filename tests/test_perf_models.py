"""Tests for the performance models: roofline, ECM, networks, metrics —
asserting the paper's published numbers where they are exact."""

import numpy as np
import pytest

from repro.constants import D3Q19_BYTES_PER_CELL_WRITE_ALLOCATE
from repro.perf import (
    EcmModel,
    IslandTreeNetwork,
    JUQUEEN,
    NodeConfig,
    SUPERMUC,
    TorusNetwork,
    bandwidth_utilization,
    cross_island_fraction,
    exchange_time_from_counters,
    flops_estimate,
    lbm_traffic_per_cell,
    machine_roofline,
    measure_copy_bandwidth,
    mflups,
    mlups,
    network_for,
    node_kernel_mlups,
    parallel_efficiency,
    roofline_mlups,
)
from repro.errors import ConfigurationError


class TestRoofline:
    def test_traffic_456_bytes(self):
        # §4.1: "a total amount of 456 bytes per cell".
        assert lbm_traffic_per_cell() == 456
        assert D3Q19_BYTES_PER_CELL_WRITE_ALLOCATE == 456

    def test_nt_store_traffic(self):
        assert lbm_traffic_per_cell(write_allocate=False) == 304

    def test_supermuc_bound(self):
        # §4.1: 37.3 GiB/s : 456 B/LUP = 87.8 MLUPS.
        assert machine_roofline(SUPERMUC).mlups == pytest.approx(87.8, abs=0.1)

    def test_juqueen_bound(self):
        # §4.1: 32.4 GiB/s : 456 B/LUP = 76.2 MLUPS.
        assert machine_roofline(JUQUEEN).mlups == pytest.approx(76.2, abs=0.15)

    def test_node_doubles_socket(self):
        s = machine_roofline(SUPERMUC, per="socket").mlups
        n = machine_roofline(SUPERMUC, per="node").mlups
        assert n == pytest.approx(2 * s)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            roofline_mlups(0.0, 456)
        with pytest.raises(ValueError):
            machine_roofline(SUPERMUC, per="rack")


class TestEcm:
    def test_saturation_cores(self):
        # §4.1: "the memory interface can be saturated using only six of
        # the eight cores" at 2.7 GHz; 1.6 GHz needs all eight.
        ecm = EcmModel(SUPERMUC)
        assert ecm.saturation_cores(2.7e9) == 6
        assert ecm.saturation_cores(1.6e9) == 8

    def test_93_percent_at_1p6ghz(self):
        ecm = EcmModel(SUPERMUC)
        p27 = ecm.predict(8, clock_hz=2.7e9)
        p16 = ecm.predict(8, clock_hz=1.6e9)
        assert p16.mlups / p27.mlups == pytest.approx(0.93, abs=0.01)

    def test_25_percent_energy_saving(self):
        ecm = EcmModel(SUPERMUC)
        p27 = ecm.predict(8, clock_hz=2.7e9)
        p16 = ecm.predict(8, clock_hz=1.6e9)
        ratio = p16.energy_per_glup_j / p27.energy_per_glup_j
        assert ratio == pytest.approx(0.75, abs=0.02)

    def test_optimal_frequency_on_machine_steps(self):
        # §4.1: "the ECM model suggests an optimal clock frequency of
        # 1.6 GHz" — evaluated on SuperMUC's discrete frequency steps.
        ecm = EcmModel(SUPERMUC)
        steps = np.array([1.2, 1.4, 1.6, 1.8, 2.0, 2.3, 2.7]) * 1e9
        assert ecm.optimal_frequency(steps).clock_hz == pytest.approx(1.6e9)

    def test_full_socket_hits_roofline(self):
        ecm = EcmModel(SUPERMUC)
        p = ecm.predict(8)
        assert p.saturated
        assert p.mlups == pytest.approx(87.8, abs=0.1)

    def test_juqueen_smt_ladder(self):
        # Figure 5: 1-way ~45, 2-way ~62, 4-way ~73 MLUPS on a node.
        ecm = EcmModel(JUQUEEN)
        p1 = ecm.predict(16, smt=1).mlups
        p2 = ecm.predict(16, smt=2).mlups
        p4 = ecm.predict(16, smt=4).mlups
        assert p1 == pytest.approx(45.0, rel=0.05)
        assert p2 == pytest.approx(62.0, rel=0.05)
        assert p4 == pytest.approx(73.0, rel=0.05)
        assert p1 < p2 < p4

    def test_invalid_smt_rejected(self):
        with pytest.raises(ValueError):
            EcmModel(SUPERMUC).predict(8, smt=4)

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            EcmModel(SUPERMUC).predict(0)
        with pytest.raises(ValueError):
            EcmModel(SUPERMUC).predict(9)

    def test_single_core_slower_than_socket(self):
        ecm = EcmModel(SUPERMUC)
        assert ecm.predict(1).mlups < ecm.predict(8).mlups

    def test_performance_scales_linearly_before_saturation(self):
        ecm = EcmModel(SUPERMUC)
        p1 = ecm.predict(1)
        p3 = ecm.predict(3)
        assert not p3.saturated
        assert p3.mlups == pytest.approx(3 * p1.mlups)


class TestNetworks:
    def test_cross_island_zero_within_island(self):
        assert cross_island_fraction(512, 512) == 0.0
        assert cross_island_fraction(100, 512) == 0.0

    def test_cross_island_positive_beyond(self):
        x = cross_island_fraction(1024, 512)
        assert 0.0 < x < 1.0

    def test_torus_time_composition(self):
        net = TorusNetwork(link_bandwidth=1e9, latency_s=1e-6, routing_dilation=0.0)
        t = net.exchange_time(8, bytes_per_node=1e6, messages_per_node=10)
        assert t == pytest.approx(10e-6 + 1e-3)

    def test_torus_dilation_grows_with_size(self):
        net = TorusNetwork(link_bandwidth=1e9, latency_s=1e-6)
        small = net.exchange_time(2, 1e6, 10)
        large = net.exchange_time(2**14, 1e6, 10)
        assert large > small

    def test_island_tree_penalizes_multi_island(self):
        net = IslandTreeNetwork(
            link_bandwidth=1e9, latency_s=1e-6, island_nodes=512, pruning=4.0
        )
        inside = net.exchange_time(512, 1e6, 10)
        across = net.exchange_time(4096, 1e6, 10)
        assert across > inside
        assert net.islands_used(4096) == 8

    def test_network_for_dispatch(self):
        assert isinstance(network_for(JUQUEEN), TorusNetwork)
        assert isinstance(network_for(SUPERMUC), IslandTreeNetwork)

    def test_invalid_exchange_params(self):
        net = TorusNetwork(link_bandwidth=1e9, latency_s=1e-6)
        with pytest.raises(ValueError):
            net.exchange_time(0, 1e6, 1)
        with pytest.raises(ValueError):
            net.exchange_time(1, -1.0, 1)


class TestExchangeTimeFromCounters:
    """Counter-driven model validation: the helper must convert the
    buffer system's summed counters to the per-node per-step quantities
    the models are parameterized in."""

    NET = TorusNetwork(
        link_bandwidth=1e9, latency_s=1e-6, routing_dilation=0.0
    )

    def test_coalesced_counters(self):
        # 4 ranks x 10 steps, 6 messages and 1 MB per rank per step.
        counters = {
            "comm.messages_coalesced": 6.0 * 4 * 10,
            "comm.coalesced_bytes": 1e6 * 4 * 10,
        }
        t = exchange_time_from_counters(self.NET, counters, steps=10, ranks=4)
        assert t == pytest.approx(6e-6 + 1e-3)

    def test_per_face_fallback(self):
        # No coalesced counters: the per-face byte ledger is used.
        counters = {"comm.remote_bytes": 2e6 * 2 * 5}
        t = exchange_time_from_counters(self.NET, counters, steps=5, ranks=2)
        assert t == pytest.approx(2e-3)

    def test_accepts_reduced_tree(self):
        from repro.perf.timing import TimingTree, reduce_trees

        tree = TimingTree()
        with tree.scoped("communication"):
            tree.add_counter("comm.messages_coalesced", 30.0)
            tree.add_counter("comm.coalesced_bytes", 3e6)
        reduced = reduce_trees([tree])
        t = exchange_time_from_counters(self.NET, reduced, steps=3, ranks=1)
        assert t == pytest.approx(10e-6 + 1e-3)

    def test_measured_run_feeds_both_models(self):
        """End to end: counters from an actual coalesced SPMD run give
        finite, positive predictions for both paper machines."""
        from repro.balance import balance_forest
        from repro.blocks import SetupBlockForest
        from repro.comm import VirtualMPI, run_spmd_simulation
        from repro.geometry import AABB
        from repro.lbm import NoSlip, TRT
        from repro.perf.timing import TimingTree, reduce_trees

        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2.0, 1.0, 1.0)), (2, 1, 1), (4, 4, 4)
        )
        balance_forest(forest, 2, strategy="morton")
        trees = [TimingTree(), TimingTree()]
        run_spmd_simulation(
            VirtualMPI(2),
            forest,
            TRT.from_tau(0.7),
            4,
            conditions=[NoSlip()],
            timing_trees=trees,
            comm_mode="coalesced",
        )
        counters = reduce_trees(trees).counters
        assert counters.get("comm.messages_coalesced", 0) > 0
        for machine in (JUQUEEN, SUPERMUC):
            t = exchange_time_from_counters(
                network_for(machine), counters, steps=4, ranks=2, job_nodes=2
            )
            assert np.isfinite(t) and t > 0.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            exchange_time_from_counters(self.NET, {}, steps=0, ranks=1)
        with pytest.raises(ValueError):
            exchange_time_from_counters(self.NET, {}, steps=1, ranks=0)


class TestMetrics:
    def test_mlups(self):
        assert mlups(2e6, 2.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            mlups(1.0, 0.0)

    def test_mflups_alias(self):
        assert mflups(5e6, 1.0) == pytest.approx(5.0)

    def test_parallel_efficiency(self):
        assert parallel_efficiency(4.2, 4.55) == pytest.approx(0.923, abs=1e-3)

    def test_supermuc_bandwidth_utilization(self):
        # §4.2: 837e9 LUPS over 2^14 sockets at 40 GiB/s -> 54.2 %.
        util = bandwidth_utilization(
            837e9, available_bandwidth=2**14 * 40 * 1024**3
        )
        assert util == pytest.approx(0.542, abs=0.005)

    def test_juqueen_bandwidth_utilization(self):
        # §4.2: 1.93e12 LUPS over 28,672 nodes at 42.4 GiB/s -> 67.4 %.
        util = bandwidth_utilization(
            1.93e12, available_bandwidth=(458752 / 16) * 42.4 * 1024**3
        )
        assert util == pytest.approx(0.674, abs=0.005)

    def test_flops_estimate_matches_paper(self):
        # 837 GLUPS -> ~166 TFLOPS (paper's figure).
        assert flops_estimate(837e9) == pytest.approx(166e12, rel=0.05)


class TestMachineSpecs:
    def test_totals(self):
        assert SUPERMUC.total_cores == 147456
        assert JUQUEEN.total_cores == 458752
        assert SUPERMUC.cores_per_node == 16
        assert JUQUEEN.cores_per_node == 16

    def test_peak_flops(self):
        # 3.2 / 5.9 PFLOPS (§3).
        assert SUPERMUC.n_nodes * SUPERMUC.node_peak_flops == pytest.approx(
            3.2e15, rel=0.01
        )
        assert JUQUEEN.n_nodes * JUQUEEN.node_peak_flops == pytest.approx(
            5.9e15, rel=0.01
        )

    def test_bandwidth_at_nominal_clock(self):
        assert SUPERMUC.bandwidth_at_clock(2.7e9) == SUPERMUC.lbm_bandwidth

    def test_node_config_labels(self):
        assert NodeConfig(16, 4).label == "16P4T"
        assert NodeConfig(16, 4).smt_level(JUQUEEN) == 4
        with pytest.raises(ConfigurationError):
            NodeConfig(3, 5).smt_level(JUQUEEN)

    def test_node_kernel_rate_positive(self):
        assert node_kernel_mlups(SUPERMUC, NodeConfig(16, 1)) > 100.0
        assert node_kernel_mlups(JUQUEEN, NodeConfig(16, 4)) > 50.0


class TestStream:
    def test_host_copy_bandwidth_measured(self):
        r = measure_copy_bandwidth(n_doubles=1_000_000, repeats=2)
        assert r.bandwidth_bytes_per_s > 1e8  # any real machine beats 100 MB/s
        assert r.gib_per_s > 0
