"""Tests for the three sparse-block kernel strategies (§4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lbm.collision import SRT, TRT
from repro.lbm.kernels import (
    ConditionalSparseKernel,
    IndexListSparseKernel,
    IntervalSparseKernel,
    fluid_intervals,
    make_kernel,
)
from repro.lbm.lattice import D3Q19

from helpers import interior, random_pdfs

STRATEGIES = [ConditionalSparseKernel, IndexListSparseKernel, IntervalSparseKernel]
IDS = ["conditional", "indexlist", "interval"]


def tube_mask(cells, radius=1.6):
    """A cylinder along z through the block center — consecutive fluid runs."""
    nx, ny, nz = cells
    x, y = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    disk = (x - nx / 2 + 0.5) ** 2 + (y - ny / 2 + 0.5) ** 2 <= radius**2
    return np.broadcast_to(disk[:, :, None], cells).copy()


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


class TestAgainstDense:
    @pytest.mark.parametrize("strategy", STRATEGIES, ids=IDS)
    @pytest.mark.parametrize("collision", [SRT(0.8), TRT.from_tau(0.8)], ids=["srt", "trt"])
    def test_fluid_cells_match_dense(self, strategy, collision, rng):
        cells = (6, 6, 6)
        mask = tube_mask(cells)
        src = random_pdfs(rng, D3Q19, cells)
        dense_dst = np.zeros_like(src)
        make_kernel("d3q19", D3Q19, collision, cells)(src, dense_dst)
        sparse_dst = np.zeros_like(src)
        strategy(mask, collision)(src, sparse_dst)
        d = interior(dense_dst)[:, mask]
        s = interior(sparse_dst)[:, mask]
        assert np.allclose(s, d, atol=1e-13)

    @pytest.mark.parametrize("strategy", STRATEGIES, ids=IDS)
    def test_non_fluid_cells_untouched(self, strategy, rng):
        cells = (6, 6, 6)
        mask = tube_mask(cells)
        src = random_pdfs(rng, D3Q19, cells)
        dst = np.full_like(src, -7.0)
        strategy(mask, SRT(0.8))(src, dst)
        # Interval kernel may write superfluous run cells *only* if they are
        # fluid; all strategies must leave non-fluid interior cells alone.
        untouched = interior(dst)[:, ~mask]
        assert np.all(untouched == -7.0)

    @pytest.mark.parametrize("strategy", STRATEGIES, ids=IDS)
    def test_full_mask_equals_dense(self, strategy, rng):
        cells = (5, 4, 6)
        mask = np.ones(cells, dtype=bool)
        src = random_pdfs(rng, D3Q19, cells)
        dense_dst = np.zeros_like(src)
        make_kernel("d3q19", D3Q19, TRT.from_tau(0.9), cells)(src, dense_dst)
        sparse_dst = np.zeros_like(src)
        strategy(mask, TRT.from_tau(0.9))(src, sparse_dst)
        assert np.allclose(interior(sparse_dst), interior(dense_dst), atol=1e-13)

    def test_empty_mask_is_noop(self, rng):
        cells = (4, 4, 4)
        mask = np.zeros(cells, dtype=bool)
        src = random_pdfs(rng, D3Q19, cells)
        dst = np.full_like(src, 3.0)
        IntervalSparseKernel(mask, SRT(0.8))(src, dst)
        assert np.all(dst == 3.0)
        dst2 = np.full_like(src, 3.0)
        IndexListSparseKernel(mask, SRT(0.8))(src, dst2)
        assert np.all(dst2 == 3.0)


class TestIntervals:
    def test_simple_runs(self):
        mask = np.zeros((2, 2, 8), dtype=bool)
        mask[0, 0, 2:5] = True
        mask[1, 1, 0] = True
        mask[1, 1, 7] = True
        iv = fluid_intervals(mask)
        assert iv == [(0, 0, 2, 5), (1, 1, 0, 8)]

    def test_empty(self):
        assert fluid_intervals(np.zeros((2, 2, 2), dtype=bool)) == []

    def test_gappy_run_counts(self):
        # A run with interior gaps: interval covers the gap cells but the
        # kernel must only write back the true fluid ones.
        mask = np.zeros((1, 1, 10), dtype=bool)
        mask[0, 0, [1, 2, 5, 6]] = True
        k = IntervalSparseKernel(mask, SRT(0.8))
        assert k.fluid_cells == 4
        assert k.run_width == 6
        assert k.processed_cells == 6

    def test_accounting(self):
        cells = (6, 6, 6)
        mask = tube_mask(cells)
        cond = ConditionalSparseKernel(mask, SRT(0.8))
        idx = IndexListSparseKernel(mask, SRT(0.8))
        itv = IntervalSparseKernel(mask, SRT(0.8))
        n_fluid = int(mask.sum())
        assert cond.fluid_cells == idx.fluid_cells == itv.fluid_cells == n_fluid
        assert cond.processed_cells == mask.size
        assert idx.processed_cells == n_fluid
        assert itv.processed_cells >= n_fluid


class TestSparseValidation:
    def test_non_boolean_mask_rejected(self, rng):
        cells = (4, 4, 4)
        src = random_pdfs(rng, D3Q19, cells)
        k = IndexListSparseKernel(np.ones(cells, dtype=bool), SRT(0.8))
        k.mask = np.ones(cells, dtype=np.int32)  # corrupt it
        with pytest.raises(TypeError):
            k(src, np.zeros_like(src))

    def test_mask_shape_mismatch_rejected(self, rng):
        cells = (4, 4, 4)
        src = random_pdfs(rng, D3Q19, cells)
        k = IndexListSparseKernel(np.ones((3, 3, 3), dtype=bool), SRT(0.8))
        with pytest.raises(ValueError):
            k(src, np.zeros_like(src))


class TestSparseProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), p=st.floats(0.1, 0.9))
    def test_random_masks_match_dense(self, seed, p):
        rng = np.random.default_rng(seed)
        cells = (4, 4, 5)
        mask = rng.random(cells) < p
        if not mask.any():
            mask[0, 0, 0] = True
        src = random_pdfs(rng, D3Q19, cells)
        dense = np.zeros_like(src)
        make_kernel("d3q19", D3Q19, SRT(0.8), cells)(src, dense)
        for strategy in STRATEGIES:
            out = np.zeros_like(src)
            strategy(mask, SRT(0.8))(src, out)
            assert np.allclose(
                interior(out)[:, mask], interior(dense)[:, mask], atol=1e-12
            )
