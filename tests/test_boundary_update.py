"""Tests for the time-varying boundary API (pulsatile inflow) and for
file-format corruption robustness."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import flagdefs as fl
from repro.balance import balance_forest
from repro.blocks import SetupBlockForest, load_forest, save_forest
from repro.comm import DistributedSimulation
from repro.core import Simulation
from repro.errors import ConfigurationError, FileFormatError, PartitioningError
from repro.geometry import AABB
from repro.lbm import NoSlip, PressureABB, TRT, UBB
from repro.scenarios import enclose_walls


def lid_sim():
    sim = Simulation(cells=(8, 8, 8), collision=TRT.from_tau(0.8))
    sim.flags.fill(fl.FLUID)
    enclose_walls(sim.flags)
    sim.flags.data[:, :, -1] = fl.VELOCITY_BC
    sim.add_boundary(NoSlip())
    lid = UBB(velocity=(0.05, 0.0, 0.0))
    sim.add_boundary(lid)
    sim.finalize()
    return sim, lid


class TestBoundaryUpdate:
    def test_flow_follows_updated_lid(self):
        sim, lid = lid_sim()
        sim.run(100)
        u1 = np.nanmean(sim.velocity()[:, :, -1, 0])
        sim.update_boundary(lid, UBB(velocity=(-0.05, 0.0, 0.0)))
        sim.run(200)
        u2 = np.nanmean(sim.velocity()[:, :, -1, 0])
        assert u1 > 0 > u2

    def test_flag_must_match(self):
        sim, lid = lid_sim()
        with pytest.raises(ConfigurationError):
            sim.update_boundary(lid, PressureABB(rho_w=1.0))

    def test_unknown_condition_rejected(self):
        sim, _ = lid_sim()
        with pytest.raises(ConfigurationError):
            sim.update_boundary(UBB(velocity=(9.0, 0.0, 0.0)), UBB(velocity=(1, 0, 0)))

    def test_before_finalize_rejected(self):
        sim = Simulation(cells=(4, 4, 4), collision=TRT.from_tau(0.8))
        with pytest.raises(ConfigurationError):
            sim.update_boundary(NoSlip(), NoSlip())

    def test_distributed_update(self):
        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2, 1, 1)), (2, 1, 1), (6, 6, 6)
        )
        balance_forest(forest, 2, strategy="round_robin")

        def lid(blk, ff):
            d = ff.data
            i = blk.grid_index[0]
            if i == 0:
                d[0] = fl.NO_SLIP
            if i == 1:
                d[-1] = fl.NO_SLIP
            d[:, 0], d[:, -1] = fl.NO_SLIP, fl.NO_SLIP
            d[:, :, 0] = fl.NO_SLIP
            d[:, :, -1] = fl.VELOCITY_BC

        lid_bc = UBB(velocity=(0.05, 0.0, 0.0))
        sim = DistributedSimulation(
            forest, TRT.from_tau(0.8), flag_setter=lid,
            boundaries=[NoSlip(), lid_bc],
        )
        sim.run(60)
        u1 = np.nanmean(sim.gather_velocity()[..., 0])
        sim.update_boundary(lid_bc, UBB(velocity=(-0.05, 0.0, 0.0)))
        sim.run(150)
        u2 = np.nanmean(sim.gather_velocity()[..., 0])
        assert u1 > 0 > u2

    def test_distributed_unknown_rejected(self):
        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2, 1, 1)), (2, 1, 1), (4, 4, 4)
        )
        balance_forest(forest, 2, strategy="round_robin")
        sim = DistributedSimulation(forest, TRT.from_tau(0.8))
        with pytest.raises(ConfigurationError):
            sim.update_boundary(UBB(velocity=(1, 0, 0)), UBB(velocity=(2, 0, 0)))


class TestFileFormatFuzz:
    @staticmethod
    def _forest_bytes():
        f = SetupBlockForest.create(AABB((0, 0, 0), (4, 2, 2)), (4, 2, 2), (8, 8, 8))
        f.assign([i % 4 for i in range(f.n_blocks)], 4)
        buf = io.BytesIO()
        save_forest(f, buf)
        return buf.getvalue()

    @settings(max_examples=40, deadline=None)
    @given(cut=st.integers(5, 200))
    def test_truncation_never_crashes(self, cut):
        data = self._forest_bytes()
        truncated = data[: max(0, len(data) - cut)]
        with pytest.raises(FileFormatError):
            load_forest(truncated)

    @settings(max_examples=40, deadline=None)
    @given(pos=st.integers(0, 300), val=st.integers(0, 255))
    def test_bitflip_rejected_or_consistent(self, pos, val):
        """A corrupted file either fails cleanly (FileFormatError /
        PartitioningError from id validation) or parses into *some*
        forest — it must never raise an unexpected exception type."""
        data = bytearray(self._forest_bytes())
        pos = pos % len(data)
        data[pos] = val
        try:
            forest = load_forest(bytes(data))
        except (FileFormatError, PartitioningError, MemoryError, OverflowError):
            return
        except Exception as exc:  # noqa: BLE001
            # Geometry errors from corrupt domain boxes are acceptable too.
            from repro.errors import ReproError, GeometryError

            assert isinstance(exc, (ReproError, GeometryError)), exc
            return
        assert forest.n_blocks >= 0
