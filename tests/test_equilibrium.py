"""Unit + property tests for the equilibrium distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lbm.equilibrium import equilibrium, equilibrium_cell, split_equilibrium
from repro.lbm.lattice import D2Q9, D3Q19, D3Q27


class TestEquilibriumMoments:
    def test_rest_state(self):
        feq = equilibrium_cell(D3Q19, 1.0, np.zeros(3))
        assert np.allclose(feq, D3Q19.weights)

    def test_density_moment(self):
        feq = equilibrium_cell(D3Q19, 1.3, [0.02, -0.01, 0.05])
        assert np.isclose(feq.sum(), 1.3)

    def test_momentum_moment(self):
        rho, u = 0.9, np.array([0.03, 0.01, -0.02])
        feq = equilibrium_cell(D3Q19, rho, u)
        j = (feq[:, None] * D3Q19.velocities).sum(axis=0)
        assert np.allclose(j, rho * u)

    def test_field_shape(self):
        rho = np.ones((3, 4, 5))
        u = np.zeros((3, 4, 5, 3))
        feq = equilibrium(D3Q19, rho, u)
        assert feq.shape == (19, 3, 4, 5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            equilibrium(D3Q19, np.ones((3, 3)), np.zeros((3, 3, 2)))

    def test_2d_model(self):
        feq = equilibrium_cell(D2Q9, 1.0, [0.05, 0.0])
        assert np.isclose(feq.sum(), 1.0)
        j = (feq[:, None] * D2Q9.velocities).sum(axis=0)
        assert np.allclose(j, [0.05, 0.0])


velocity_components = st.floats(-0.08, 0.08, allow_nan=False)


class TestEquilibriumProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        rho=st.floats(0.5, 2.0),
        ux=velocity_components,
        uy=velocity_components,
        uz=velocity_components,
    )
    def test_moments_exact_for_any_state(self, rho, ux, uy, uz):
        u = np.array([ux, uy, uz])
        feq = equilibrium_cell(D3Q19, rho, u)
        assert np.isclose(feq.sum(), rho, rtol=1e-12)
        j = (feq[:, None] * D3Q19.velocities).sum(axis=0)
        assert np.allclose(j, rho * u, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(rho=st.floats(0.5, 2.0), ux=velocity_components)
    def test_positive_at_moderate_velocity(self, rho, ux):
        feq = equilibrium_cell(D3Q19, rho, [ux, 0, 0])
        assert np.all(feq > 0)

    @settings(max_examples=30, deadline=None)
    @given(ux=velocity_components, uy=velocity_components, uz=velocity_components)
    def test_split_reconstructs(self, ux, uy, uz):
        feq = equilibrium_cell(D3Q19, 1.0, [ux, uy, uz])
        plus, minus = split_equilibrium(D3Q19, feq)
        assert np.allclose(plus + minus, feq, atol=1e-14)
        # plus is symmetric under direction inversion, minus antisymmetric
        inv = D3Q19.inverse
        assert np.allclose(plus[inv], plus, atol=1e-14)
        assert np.allclose(minus[inv], -minus, atol=1e-14)

    def test_d3q27_consistency(self):
        feq = equilibrium_cell(D3Q27, 1.1, [0.02, 0.03, -0.01])
        assert np.isclose(feq.sum(), 1.1)
