"""Top-level package API and constants tests."""

import numpy as np
import pytest

import repro
from repro import flagdefs as fl
from repro.constants import (
    CS2,
    D3Q19_BYTES_PER_CELL_NT_STORES,
    D3Q19_BYTES_PER_CELL_WRITE_ALLOCATE,
    D3Q19_SIZE,
    GIB,
    MAX_STABLE_LATTICE_VELOCITY,
)


class TestTopLevelApi:
    def test_lazy_exports_resolve(self):
        assert repro.Simulation.__name__ == "Simulation"
        assert repro.TRT.__name__ == "TRT"
        assert repro.DistributedSimulation.__name__ == "DistributedSimulation"
        assert repro.CoronaryTree.__name__ == "CoronaryTree"
        assert callable(repro.balance_forest)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_dir_contains_exports(self):
        listing = dir(repro)
        assert "Simulation" in listing and "TRT" in listing

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_via_top_level(self):
        sim = repro.Simulation(cells=(4, 4, 4), collision=repro.SRT(0.8))
        sim.flags.fill(fl.FLUID)
        sim.finalize()
        sim.run(2)
        assert sim.total_mass() > 0


class TestConstants:
    def test_paper_traffic_numbers(self):
        assert D3Q19_SIZE == 19
        assert D3Q19_BYTES_PER_CELL_WRITE_ALLOCATE == 456
        assert D3Q19_BYTES_PER_CELL_NT_STORES == 304

    def test_lattice_sound_speed(self):
        assert np.isclose(CS2, 1.0 / 3.0)

    def test_stability_bound(self):
        assert MAX_STABLE_LATTICE_VELOCITY == 0.1  # §4.3

    def test_units(self):
        assert GIB == 2**30

    def test_flag_bits_disjoint(self):
        flags = [fl.FLUID, fl.NO_SLIP, fl.VELOCITY_BC, fl.PRESSURE_BC]
        for i, a in enumerate(flags):
            for b in flags[i + 1:]:
                assert (a & b) == 0
        assert fl.BOUNDARY_MASK == (fl.NO_SLIP | fl.VELOCITY_BC | fl.PRESSURE_BC)
        assert fl.OUTSIDE == 0
