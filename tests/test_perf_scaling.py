"""Tests of the scaling simulator: the paper's qualitative and (where
published) quantitative results for Figures 6-8, plus consistency of the
vessel block model with the exact partitioner."""

import numpy as np
import pytest

from repro.geometry import CapsuleTreeGeometry, CoronaryTree
from repro.blocks import SetupBlockForest
from repro.errors import ConfigurationError
from repro.perf import (
    JUQUEEN,
    NodeConfig,
    SUPERMUC,
    VesselBlockModel,
    strong_scaling_coronary,
    weak_scaling_coronary,
    weak_scaling_dense,
)


@pytest.fixture(scope="module")
def paper_tree():
    # Calibrated to the paper's coronary dataset: ~2.1 M fluid cells at
    # dx = 0.1 mm, ~0.3 % of the bounding box.
    return CoronaryTree.generate(generations=9, root_radius=1.9e-3, seed=0)


@pytest.fixture(scope="module")
def block_model(paper_tree):
    return VesselBlockModel(paper_tree, samples=60_000)


class TestPaperTreeCalibration:
    def test_fluid_cells_at_paper_resolutions(self, paper_tree):
        v = paper_tree.volume_estimate()
        # §4.3: 2.1 M fluid cells at 0.1 mm, 16.9 M at 0.05 mm.
        assert v / (1e-4) ** 3 == pytest.approx(2.1e6, rel=0.25)
        assert v / (5e-5) ** 3 == pytest.approx(16.9e6, rel=0.25)

    def test_volume_fraction_near_paper(self, paper_tree):
        # §4.3: "only covers about 0.3 % of the volume of its ... box".
        assert 0.001 < paper_tree.volume_fraction() < 0.01


class TestVesselBlockModel:
    def test_matches_exact_partitioner(self):
        # The sampled occupancy must agree with the exact per-cell
        # partitioner.  Use a shallow tree whose thinnest vessels remain
        # thick relative to the classification sampling, so both methods
        # resolve the same set of blocks.
        tree = CoronaryTree.generate(generations=4, root_radius=2e-3, seed=3)
        geom = CapsuleTreeGeometry(tree)
        model = VesselBlockModel(tree, samples=120_000)
        box = geom.aabb()
        grid = 10
        h = float(max(box.extent)) / grid
        n_grid = tuple(int(np.ceil(e / h)) for e in box.extent)
        forest = SetupBlockForest.create(
            type(box)(tuple(box.lo), tuple(box.lo + h * np.asarray(n_grid))),
            n_grid,
            (16, 16, 16),
            geometry=geom,
            workload_samples=16,
        )
        n_sampled = model.occupied_blocks(h)
        assert n_sampled == pytest.approx(forest.n_blocks, rel=0.15)

    def test_more_blocks_for_smaller_edges(self, block_model):
        diag = block_model.tree.aabb().diagonal
        n1 = block_model.occupied_blocks(diag / 8)
        n2 = block_model.occupied_blocks(diag / 32)
        assert n2 > n1

    def test_fluid_fraction_rises_with_resolution(self, block_model):
        diag = block_model.tree.aabb().diagonal
        f_coarse = block_model.fluid_fraction(diag / 8)
        f_fine = block_model.fluid_fraction(diag / 2000)
        assert f_fine > f_coarse

    def test_find_block_edge_respects_target(self, block_model):
        h = block_model.find_block_edge(500)
        assert block_model.occupied_blocks(h) <= 500
        # And reasonably close to the target.
        assert block_model.occupied_blocks(h) > 150

    def test_invalid_inputs(self, block_model):
        with pytest.raises(ConfigurationError):
            block_model.occupied_blocks(0.0)
        with pytest.raises(ConfigurationError):
            block_model.find_block_edge(0)


class TestDenseWeakScaling:
    def test_supermuc_reaches_paper_throughput(self):
        # §4.2: "We achieve up to 837 x 10^3 MLUPS" at 2^17 cores.
        pts = weak_scaling_dense(
            SUPERMUC, NodeConfig(4, 4), 3_430_000, [2**17]
        )
        assert pts[0].total_mlups == pytest.approx(837e3, rel=0.15)

    def test_juqueen_reaches_paper_throughput(self):
        # §4.2: "1.8 million threads manage to update 1.93 trillion cells
        # per second" on all 458,752 cores.
        pts = weak_scaling_dense(
            JUQUEEN, NodeConfig(16, 4), 1_728_000, [458752]
        )
        assert pts[0].total_mlups == pytest.approx(1.93e6, rel=0.15)

    def test_juqueen_92_percent_efficiency(self):
        pts = weak_scaling_dense(
            JUQUEEN, NodeConfig(16, 4), 1_728_000, [32, 458752]
        )
        eff = pts[1].mlups_per_core / pts[0].mlups_per_core
        assert eff == pytest.approx(0.92, abs=0.04)

    def test_supermuc_efficiency_drops_across_islands(self):
        # One island (512 nodes = 8192 cores) vs 16 islands.
        pts = weak_scaling_dense(
            SUPERMUC, NodeConfig(16, 1), 3_430_000, [2**13, 2**17]
        )
        assert pts[1].mlups_per_core < pts[0].mlups_per_core
        assert pts[1].comm_fraction > pts[0].comm_fraction
        # MPI time share grows markedly (paper Figure 6a dotted lines).
        assert pts[1].comm_fraction > 1.5 * pts[0].comm_fraction

    def test_juqueen_comm_fraction_stable(self):
        # Figure 6b: "the percentage of time spent for MPI communication
        # is quite stable when scaling up to the entire machine".
        pts = weak_scaling_dense(
            JUQUEEN, NodeConfig(64, 1), 1_728_000, [2**10, 458752]
        )
        assert pts[1].comm_fraction < 2.5 * pts[0].comm_fraction
        assert pts[1].comm_fraction < 0.2

    def test_all_configs_similar(self):
        # Figure 6: the three parallelization variants perform similarly.
        rates = []
        for cfg in (NodeConfig(16, 1), NodeConfig(4, 4), NodeConfig(2, 8)):
            pts = weak_scaling_dense(SUPERMUC, cfg, 3_430_000, [2**10])
            rates.append(pts[0].mlups_per_core)
        assert max(rates) / min(rates) < 1.1

    def test_partial_node_rejected_above_one_node(self):
        with pytest.raises(ConfigurationError):
            weak_scaling_dense(SUPERMUC, NodeConfig(16, 1), 1e6, [24])


class TestCoronaryWeakScaling:
    def test_mflups_rises_with_cores(self, block_model):
        # Figure 7: "results show an increase in MFLUPS/core with an
        # increasing number of cores" because the fluid fraction rises.
        pts = weak_scaling_coronary(
            JUQUEEN, NodeConfig(16, 4), block_model, 80,
            [2**9, 2**13, 2**17], blocks_per_process=4,
        )
        assert pts[-1].mflups_per_core > pts[0].mflups_per_core
        assert pts[-1].fluid_fraction > pts[0].fluid_fraction

    def test_resolution_shrinks_with_cores(self, block_model):
        pts = weak_scaling_coronary(
            JUQUEEN, NodeConfig(16, 4), block_model, 80,
            [2**9, 2**15], blocks_per_process=4,
        )
        assert pts[1].dx < pts[0].dx

    def test_full_juqueen_resolution_order(self, block_model):
        # §4.3: dx down to 1.276 µm on the whole machine.
        pts = weak_scaling_coronary(
            JUQUEEN, NodeConfig(16, 4), block_model, 80,
            [458752], blocks_per_process=4,
        )
        assert pts[0].dx == pytest.approx(1.276e-6, rel=0.5)
        # Total fluid cells within a factor ~3 of the paper's 1.03e12.
        assert 2e11 < pts[0].total_fluid_cells < 3e12


class TestCoronaryStrongScaling:
    def test_supermuc_baseline_matches_paper(self, block_model):
        # §4.3: 11.4 time steps/s on a single node at 0.1 mm.
        pts = strong_scaling_coronary(
            SUPERMUC, NodeConfig(4, 4), block_model, 1e-4, [16]
        )
        assert pts[0].timesteps_per_s == pytest.approx(11.4, rel=0.35)

    def test_timesteps_rise_with_cores(self, block_model):
        pts = strong_scaling_coronary(
            SUPERMUC, NodeConfig(4, 4), block_model, 1e-4,
            [16, 256, 2048, 32768],
        )
        ts = [p.timesteps_per_s for p in pts]
        assert ts == sorted(ts)
        assert ts[-1] / ts[0] > 50  # orders-of-magnitude speedup

    def test_optimal_blocks_per_core_declines(self, block_model):
        # §4.3: "The optimal number of blocks per core is 32 at 16 cores
        # declining to 1 at 4,096 cores".
        pts = strong_scaling_coronary(
            SUPERMUC, NodeConfig(4, 4), block_model, 1e-4, [64, 32768]
        )
        assert pts[0].blocks_per_core > 8
        assert pts[1].blocks_per_core <= 2

    def test_block_sizes_shrink(self, block_model):
        # §4.3: "Block sizes range from 34^3 at 16 cores down to 9^3".
        pts = strong_scaling_coronary(
            SUPERMUC, NodeConfig(4, 4), block_model, 1e-4, [64, 32768]
        )
        assert 20 <= pts[0].block_edge_cells <= 50
        assert 4 <= pts[1].block_edge_cells <= 14

    def test_juqueen_baseline_matches_paper(self, block_model):
        # §4.3: 0.51 MFLUPS/core at one nodeboard (512 cores), 0.1 mm.
        pts = strong_scaling_coronary(
            JUQUEEN, NodeConfig(16, 4), block_model, 1e-4, [512]
        )
        assert pts[0].mflups_per_core == pytest.approx(0.51, rel=0.35)

    def test_juqueen_efficiency_declines_continuously(self, block_model):
        pts = strong_scaling_coronary(
            JUQUEEN, NodeConfig(16, 4), block_model, 1e-4,
            [512, 2048, 8192, 32768],
        )
        rates = [p.mflups_per_core for p in pts]
        assert rates == sorted(rates, reverse=True)

    def test_supermuc_outperforms_juqueen_per_core_at_small_blocks(
        self, block_model
    ):
        # §4.3: SuperMUC's faster cores cope better with framework
        # overhead at small block sizes.
        s = strong_scaling_coronary(
            SUPERMUC, NodeConfig(4, 4), block_model, 1e-4, [32768]
        )[0]
        j = strong_scaling_coronary(
            JUQUEEN, NodeConfig(16, 4), block_model, 1e-4, [32768]
        )[0]
        assert s.mflups_per_core > j.mflups_per_core

    def test_finer_resolution_higher_baseline_efficiency(self, block_model):
        # §4.3: at 0.05 mm the single-node baseline is *relatively*
        # better (2.25 ts/s vs 11.4 at 8x the work).
        p1 = strong_scaling_coronary(
            SUPERMUC, NodeConfig(4, 4), block_model, 1e-4, [64]
        )[0]
        p05 = strong_scaling_coronary(
            SUPERMUC, NodeConfig(4, 4), block_model, 5e-5, [64]
        )[0]
        assert p05.mflups_per_core > p1.mflups_per_core
        assert p05.timesteps_per_s < p1.timesteps_per_s
