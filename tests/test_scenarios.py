"""Tests for the reusable scenario builders and the non-blocking
virtual-MPI operations."""

import numpy as np
import pytest

from repro import flagdefs as fl
from repro.balance import balance_forest
from repro.blocks import SetupBlockForest
from repro.comm import DistributedSimulation, VirtualMPI
from repro.core import Simulation
from repro.core.flags import FlagField
from repro.errors import ConfigurationError
from repro.lbm import NoSlip, PressureABB, TRT, UBB
from repro.geometry import AABB
from repro.scenarios import channel_with_obstacle, enclose_walls, lid_driven_cavity


class _FakeBlock:
    def __init__(self, gi):
        self.grid_index = gi


class TestEncloseWalls:
    def test_all_faces(self):
        ff = FlagField((4, 4, 4))
        ff.fill(fl.FLUID)
        enclose_walls(ff)
        d = ff.data
        for axis in range(3):
            sl = [slice(None)] * 3
            sl[axis] = 0
            assert np.all(d[tuple(sl)] == fl.NO_SLIP)
            sl[axis] = -1
            assert np.all(d[tuple(sl)] == fl.NO_SLIP)

    def test_selected_faces(self):
        ff = FlagField((4, 4, 4))
        ff.fill(fl.FLUID)
        enclose_walls(ff, faces=["-z"])
        assert np.all(ff.data[:, :, 0] == fl.NO_SLIP)
        assert np.all(ff.data[:, :, -1] == fl.OUTSIDE)  # untouched ghost

    def test_bad_face_rejected(self):
        ff = FlagField((4, 4, 4))
        with pytest.raises(ConfigurationError):
            enclose_walls(ff, faces=["+w"])


class TestLidDrivenCavity:
    def test_single_block(self):
        setter = lid_driven_cavity((1, 1, 1), lid_face="+z")
        ff = FlagField((4, 4, 4))
        ff.fill(fl.FLUID)
        setter(_FakeBlock((0, 0, 0)), ff)
        assert np.all(ff.data[:, :, -1] == fl.VELOCITY_BC)
        assert np.all(ff.data[:, :, 0] == fl.NO_SLIP)
        # Side walls are no-slip except the edge shared with the lid
        # (the lid takes precedence there, applied last).
        assert np.all(ff.data[0, :, :-1] == fl.NO_SLIP)
        assert np.all(ff.data[0, :, -1] == fl.VELOCITY_BC)

    def test_interior_block_untouched(self):
        setter = lid_driven_cavity((3, 3, 3))
        ff = FlagField((4, 4, 4))
        ff.fill(fl.FLUID)
        setter(_FakeBlock((1, 1, 1)), ff)
        assert ff.count(fl.NO_SLIP, include_ghost=True) == 0

    def test_matches_manual_setup(self):
        # The scenario-built distributed cavity equals the manual one.
        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2, 2, 2)), (2, 2, 2), (4, 4, 4)
        )
        balance_forest(forest, 4, strategy="round_robin")
        bcs = [NoSlip(), UBB(velocity=(0.05, 0.0, 0.0))]
        sim = DistributedSimulation(
            forest, TRT.from_tau(0.8),
            flag_setter=lid_driven_cavity((2, 2, 2)), boundaries=bcs,
        )
        sim.run(20)
        ref = Simulation(cells=(8, 8, 8), collision=TRT.from_tau(0.8))
        ref.flags.fill(fl.FLUID)
        enclose_walls(ref.flags)
        ref.flags.data[:, :, -1] = fl.VELOCITY_BC
        for bc in bcs:
            ref.add_boundary(bc)
        ref.finalize()
        ref.run(20)
        assert np.nanmax(np.abs(ref.velocity() - sim.gather_velocity())) == 0.0


class TestChannelWithObstacle:
    def test_flags_assigned(self):
        setter = channel_with_obstacle(
            (2, 1, 1), (8, 8, 8), (6, 3, 3), (10, 5, 5)
        )
        # First block carries the inflow face and part of the obstacle.
        ff = FlagField((8, 8, 8))
        ff.fill(fl.FLUID)
        setter(_FakeBlock((0, 0, 0)), ff)
        assert np.any(ff.data[0] == fl.VELOCITY_BC)
        assert np.any(ff.interior == fl.NO_SLIP)
        # Second block carries the outflow and the rest of the obstacle.
        ff2 = FlagField((8, 8, 8))
        ff2.fill(fl.FLUID)
        setter(_FakeBlock((1, 0, 0)), ff2)
        assert np.any(ff2.data[-1] == fl.PRESSURE_BC)
        assert np.any(ff2.interior == fl.NO_SLIP)
        # Obstacle cells split consistently across the two blocks.
        n_obs = int((ff.interior == fl.NO_SLIP).sum()) + int(
            (ff2.interior == fl.NO_SLIP).sum()
        )
        assert n_obs == 4 * 2 * 2

    def test_runs_stably(self):
        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2, 1, 1)), (2, 1, 1), (8, 8, 8)
        )
        balance_forest(forest, 2, strategy="round_robin")
        sim = DistributedSimulation(
            forest,
            TRT.from_tau(0.7),
            flag_setter=channel_with_obstacle(
                (2, 1, 1), (8, 8, 8), (6, 3, 3), (10, 5, 5)
            ),
            boundaries=[
                NoSlip(), UBB(velocity=(0.03, 0, 0)), PressureABB(rho_w=1.0)
            ],
        )
        sim.run(60, check_every=20)
        u = sim.gather_velocity()
        assert np.nanmean(u[..., 0]) > 0  # net downstream flow

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            channel_with_obstacle((2, 1, 1), (8, 8, 8), (5, 5, 5), (5, 6, 6))
        with pytest.raises(ConfigurationError):
            channel_with_obstacle((2, 1, 1), (8, 8, 8), (0, 0, 0), (99, 1, 1))


class TestNonBlockingVmpi:
    def test_isend_irecv(self):
        world = VirtualMPI(2, timeout=10)

        def program(comm):
            if comm.rank == 0:
                comm.isend("payload", dest=1, tag=9).wait()
                return None
            req = comm.irecv(source=0, tag=9)
            return req.wait()

        assert world.run(program)[1] == "payload"

    def test_iprobe(self):
        world = VirtualMPI(2, timeout=10)

        def program(comm):
            if comm.rank == 0:
                comm.send(1, dest=1, tag=5)
                comm.barrier()
                return None
            comm.barrier()  # after this, the message must be waiting
            probed = comm.iprobe(source=0, tag=5)
            not_there = comm.iprobe(source=0, tag=6)
            comm.recv(source=0, tag=5)
            return (probed, not_there)

        assert world.run(program)[1] == (True, False)

    def test_request_idempotent_wait(self):
        world = VirtualMPI(2, timeout=10)

        def program(comm):
            if comm.rank == 0:
                comm.send(42, dest=1)
                return None
            req = comm.irecv(source=0)
            return (req.wait(), req.wait(), req.test())

        v1, v2, (done, v3) = world.run(program)[1]
        assert v1 == v2 == v3 == 42
        assert done
