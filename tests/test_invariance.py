"""Symmetry and convergence properties of the LBM core.

* 90-degree rotation equivariance: rotating the state and rotating the
  result commute — a stringent check of the direction indexing in every
  kernel.
* Grid convergence of the Poiseuille solution.
"""

import numpy as np
import pytest

from repro import flagdefs as fl
from repro.core import Simulation
from repro.lbm import D3Q19, NoSlip, SRT, TRT
from repro.lbm.kernels import make_kernel
from repro.lbm.reference_flows import poiseuille_slit_profile

from helpers import interior, random_pdfs


def rotation_permutation(model):
    """Direction permutation under a +90 deg rotation about z:
    (ex, ey, ez) -> (-ey, ex, ez)."""
    index = {tuple(int(v) for v in e): a for a, e in enumerate(model.velocities)}
    perm = np.empty(model.q, dtype=np.int64)
    for a, e in enumerate(model.velocities):
        target = (-int(e[1]), int(e[0]), int(e[2]))
        perm[a] = index[target]
    return perm


def rotate_state(f, perm):
    """Rotate a SoA PDF array by 90 deg about z (axes x->y)."""
    out = np.empty_like(np.rot90(f, k=1, axes=(1, 2)))
    rotated = np.rot90(f, k=1, axes=(1, 2))
    for a in range(f.shape[0]):
        out[perm[a]] = rotated[a]
    return out


class TestRotationEquivariance:
    @pytest.mark.parametrize("tier", ["generic", "d3q19", "vectorized"])
    @pytest.mark.parametrize(
        "collision", [SRT(0.8), TRT.from_tau(0.8)], ids=["srt", "trt"]
    )
    def test_kernel_commutes_with_rotation(self, tier, collision):
        rng = np.random.default_rng(11)
        n = 6
        cells = (n, n, n)  # cubic so the rotation maps the grid to itself
        src = random_pdfs(rng, D3Q19, cells)
        perm = rotation_permutation(D3Q19)

        dst = np.zeros_like(src)
        make_kernel(tier, D3Q19, collision, cells)(src, dst)
        rotated_result = rotate_state(dst, perm)

        rotated_src = np.ascontiguousarray(rotate_state(src, perm))
        dst2 = np.zeros_like(rotated_src)
        make_kernel(tier, D3Q19, collision, cells)(rotated_src, dst2)

        assert np.allclose(
            interior(dst2), interior(rotated_result), atol=1e-13
        )

    def test_permutation_is_valid(self):
        perm = rotation_permutation(D3Q19)
        assert sorted(perm) == list(range(19))
        # Four rotations are the identity.
        p4 = perm[perm[perm[perm]]]
        assert np.array_equal(p4, np.arange(19))


class TestGridConvergence:
    @staticmethod
    def _poiseuille_error(nz: int) -> float:
        # SRT: its magic parameter (tau - 1/2)^2 != 3/16 leaves a wall
        # position error, giving a measurable convergence order (TRT at
        # Lambda = 3/16 is exact at any resolution).
        tau = 0.8
        nu = (tau - 0.5) / 3.0
        # Fix the physical problem: same maximal velocity at any grid.
        u_max = 5e-4
        F = 8.0 * nu * u_max / nz**2
        sim = Simulation(
            cells=(4, 4, nz),
            collision=SRT(tau),
            body_force=(F, 0.0, 0.0),
            periodic=(True, True, False),
        )
        sim.flags.fill(fl.FLUID)
        sim.flags.data[:, :, 0] = fl.NO_SLIP
        sim.flags.data[:, :, -1] = fl.NO_SLIP
        sim.add_boundary(NoSlip())
        sim.finalize()
        # Run well past the diffusive time scale H^2/nu.
        sim.run(int(12 * nz**2 / nu / 10) * 10)
        ux = sim.velocity()[2, 2, :, 0]
        z = np.arange(nz) + 0.5
        exact = poiseuille_slit_profile(z, float(nz), F, nu)
        return float(np.abs(ux - exact).max() / exact.max())

    def test_error_decreases_with_resolution(self):
        e_coarse = self._poiseuille_error(6)
        e_fine = self._poiseuille_error(12)
        assert e_fine < e_coarse
        # Bounce-back + TRT is second order; allow margin for the
        # first-order forcing term.
        assert e_coarse / e_fine > 1.8
