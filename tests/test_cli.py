"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SuperMUC" in out and "JUQUEEN" in out
        assert "87.8" in out

    def test_cavity(self, capsys, tmp_path):
        vtk = str(tmp_path / "cav.vtk")
        assert main(["cavity", "--size", "8", "--steps", "10", "--vtk", vtk]) == 0
        out = capsys.readouterr().out
        assert "MLUPS" in out
        assert open(vtk).readline().startswith("# vtk")

    def test_coronary(self, capsys):
        assert main([
            "coronary", "--generations", "3", "--blocks", "24",
            "--ranks", "3", "--steps", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "MFLUPS" in out

    def test_figures_fast(self, capsys):
        assert main(["figures", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 5" in out
        assert "1.6 GHz" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
