"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SuperMUC" in out and "JUQUEEN" in out
        assert "87.8" in out

    def test_cavity(self, capsys, tmp_path):
        vtk = str(tmp_path / "cav.vtk")
        assert main(["cavity", "--size", "8", "--steps", "10", "--vtk", vtk]) == 0
        out = capsys.readouterr().out
        assert "MLUPS" in out
        assert open(vtk).readline().startswith("# vtk")

    def test_coronary(self, capsys):
        assert main([
            "coronary", "--generations", "3", "--blocks", "24",
            "--ranks", "3", "--steps", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "MFLUPS" in out

    def test_figures_fast(self, capsys):
        assert main(["figures", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 5" in out
        assert "1.6 GHz" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCliResilience:
    """``--chaos`` and the checkpoint/restart flags."""

    def test_chaos_verifies_bit_identical(self, capsys):
        assert main([
            "--chaos", "7", "--profile-ranks", "2", "--profile-steps", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to fault-free baseline: True" in out
        assert "fault injector (seed 7)" in out

    def test_chaos_crash_drill(self, capsys, tmp_path):
        ckpt = str(tmp_path / "drill.npz")
        assert main([
            "--chaos", "3", "--profile-ranks", "2", "--profile-steps", "9",
            "--checkpoint-every", "3", "--checkpoint", ckpt,
        ]) == 0
        out = capsys.readouterr().out
        assert "crash drill" in out
        assert "bit-identical = True" in out

    def test_cavity_checkpoint_then_restart(self, capsys, tmp_path):
        ckpt = str(tmp_path / "cav.npz")
        assert main([
            "cavity", "--size", "8", "--steps", "20",
            "--checkpoint", ckpt, "--checkpoint-every", "10",
        ]) == 0
        first = capsys.readouterr().out
        assert main([
            "cavity", "--size", "8", "--steps", "20",
            "--checkpoint", ckpt, "--restart",
        ]) == 0
        out = capsys.readouterr().out
        assert f"restarted from {ckpt} at step 20" in out
        # Same physics: the reported max |u| matches the first run's.
        assert first.split("max |u| = ")[1] == out.split("max |u| = ")[1]

    def test_checkpoint_every_requires_path(self, capsys):
        with pytest.raises(SystemExit):
            main(["cavity", "--size", "8", "--steps", "5",
                  "--checkpoint-every", "2"])

    def test_restart_requires_path(self):
        with pytest.raises(SystemExit):
            main(["cavity", "--size", "8", "--steps", "5", "--restart"])
