"""Load balancing tests: graph construction, the METIS-like multilevel
partitioner, Morton-curve splitting, and strategy quality comparison."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance import (
    balance_forest,
    build_block_graph,
    curve_split,
    evaluate_balance,
    exchange_volume_cells,
    morton_key,
    morton_order,
    partition_graph,
)
from repro.blocks import SetupBlockForest
from repro.errors import LoadBalanceError
from repro.geometry import AABB, CapsuleTreeGeometry, CoronaryTree


@pytest.fixture(scope="module")
def coronary_forest():
    geom = CapsuleTreeGeometry(CoronaryTree.generate(generations=5, seed=2))
    box = geom.aabb()
    return SetupBlockForest.create(
        box, (6, 6, 6), (16, 16, 16), geometry=geom
    )


class TestGraph:
    def test_exchange_volumes(self):
        cells = (8, 4, 2)
        assert exchange_volume_cells(cells, (1, 0, 0)) == 8   # x-face: 4*2
        assert exchange_volume_cells(cells, (0, 1, 0)) == 16  # y-face: 8*2
        assert exchange_volume_cells(cells, (1, 1, 0)) == 2   # edge: z-line
        assert exchange_volume_cells(cells, (1, 1, 1)) == 1   # corner

    def test_dense_grid_graph(self):
        f = SetupBlockForest.create(AABB((0, 0, 0), (3, 3, 3)), (3, 3, 3), (4, 4, 4))
        g = build_block_graph(f)
        assert g.number_of_nodes() == 27
        # Center block connects to all 26 others minus non-adjacent: in a
        # 3^3 grid the center is adjacent to all 26.
        center = [n for n, d in g.nodes(data=True) if d["grid_index"] == (1, 1, 1)][0]
        assert g.degree(center) == 26

    def test_face_edges_heavier_than_corner(self):
        f = SetupBlockForest.create(AABB((0, 0, 0), (2, 2, 2)), (2, 2, 2), (8, 8, 8))
        g = build_block_graph(f)
        idx = {d["grid_index"]: n for n, d in g.nodes(data=True)}
        face = g[idx[(0, 0, 0)]][idx[(1, 0, 0)]]["weight"]
        corner = g[idx[(0, 0, 0)]][idx[(1, 1, 1)]]["weight"]
        assert face > corner


class TestMetisLike:
    def test_balanced_grid_partition(self):
        g = nx.grid_graph(dim=(6, 6, 6))
        for n in g.nodes:
            g.nodes[n]["weight"] = 1
        res = partition_graph(g, 8, seed=1)
        assert res.imbalance <= 1.12
        # A sensible cut of a 6^3 grid into 8 parts is far below cutting
        # every edge.
        assert res.edge_cut < 0.5 * g.number_of_edges()
        assert set(res.parts) == set(range(8))

    def test_k1_trivial(self):
        g = nx.path_graph(5)
        res = partition_graph(g, 1)
        assert res.edge_cut == 0.0
        assert np.all(res.parts == 0)

    def test_two_cliques_split_cleanly(self):
        # Two dense cliques joined by one light edge: the partitioner must
        # cut the bridge.
        g = nx.Graph()
        for base in (0, 10):
            for i in range(5):
                for j in range(i + 1, 5):
                    g.add_edge(base + i, base + j, weight=10.0)
        g.add_edge(0, 10, weight=1.0)
        for n in g.nodes:
            g.nodes[n]["weight"] = 1
        res = partition_graph(g, 2, seed=0)
        assert res.edge_cut == 1.0
        left = {res.parts[i] for i in range(5)}
        right = {res.parts[5 + i] for i in range(5)}
        assert len(left) == 1 and len(right) == 1 and left != right

    def test_errors(self):
        g = nx.path_graph(3)
        with pytest.raises(LoadBalanceError):
            partition_graph(g, 0)
        with pytest.raises(LoadBalanceError):
            partition_graph(g, 5)
        with pytest.raises(LoadBalanceError):
            partition_graph(nx.Graph(), 1)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), k=st.integers(2, 6))
    def test_random_graphs_respect_balance(self, seed, k):
        rng = np.random.default_rng(seed)
        g = nx.gnp_random_graph(40, 0.15, seed=seed)
        for n in g.nodes:
            g.nodes[n]["weight"] = int(rng.integers(1, 5))
        for u, v in g.edges:
            g[u][v]["weight"] = float(rng.integers(1, 10))
        res = partition_graph(g, k, epsilon=0.2, seed=seed)
        # Greedy growing may overfill slightly on tiny graphs, but the
        # imbalance must remain bounded.
        assert res.imbalance < 2.0
        assert len(res.parts) == 40


class TestMorton:
    def test_key_interleaves(self):
        assert morton_key(0, 0, 0) == 0
        assert morton_key(1, 0, 0) == 1
        assert morton_key(0, 1, 0) == 2
        assert morton_key(0, 0, 1) == 4
        assert morton_key(1, 1, 1) == 7

    def test_order_locality(self):
        # Morton order visits each 2x2x2 octant contiguously.
        idx = [(i, j, k) for i in range(2) for j in range(2) for k in range(2)]
        order = morton_order(idx)
        keys = [morton_key(*idx[i]) for i in order]
        assert keys == sorted(keys)

    def test_negative_rejected(self):
        with pytest.raises(LoadBalanceError):
            morton_key(-1, 0, 0)

    def test_curve_split_balances(self):
        w = [1.0] * 100
        parts = curve_split(w, 4)
        counts = np.bincount(parts)
        assert np.all(counts == 25)

    def test_curve_split_weighted(self):
        # One heavy item dominates; it gets its own part region.
        w = [1, 1, 1, 100, 1, 1, 1]
        parts = curve_split(w, 2)
        assert parts == sorted(parts)  # contiguous split
        loads = [sum(wi for wi, p in zip(w, parts) if p == q) for q in (0, 1)]
        assert max(loads) / (sum(w) / 2) < 2.0

    def test_every_part_nonempty(self):
        parts = curve_split([100, 1, 1, 1], 4)
        assert set(parts) == {0, 1, 2, 3}

    def test_split_errors(self):
        with pytest.raises(LoadBalanceError):
            curve_split([1.0], 2)
        with pytest.raises(LoadBalanceError):
            curve_split([1.0, -1.0], 2)


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["round_robin", "random", "morton", "metis"])
    def test_all_strategies_assign_everything(self, coronary_forest, strategy):
        import copy

        f = copy.deepcopy(coronary_forest)
        balance_forest(f, 8, strategy=strategy)
        assert all(0 <= b.owner < 8 for b in f.blocks)
        q = evaluate_balance(f)
        assert q.n_processes == 8

    def test_metis_beats_round_robin_cut(self, coronary_forest):
        import copy

        f_rr = copy.deepcopy(coronary_forest)
        balance_forest(f_rr, 8, strategy="round_robin")
        f_m = copy.deepcopy(coronary_forest)
        balance_forest(f_m, 8, strategy="metis")
        q_rr = evaluate_balance(f_rr)
        q_m = evaluate_balance(f_m)
        assert q_m.cut_fraction < q_rr.cut_fraction

    def test_morton_beats_round_robin_cut(self, coronary_forest):
        import copy

        f_rr = copy.deepcopy(coronary_forest)
        balance_forest(f_rr, 8, strategy="round_robin")
        f_z = copy.deepcopy(coronary_forest)
        balance_forest(f_z, 8, strategy="morton")
        assert (
            evaluate_balance(f_z).cut_fraction
            < evaluate_balance(f_rr).cut_fraction
        )

    def test_unknown_strategy_rejected(self, coronary_forest):
        import copy

        with pytest.raises(LoadBalanceError):
            balance_forest(copy.deepcopy(coronary_forest), 4, strategy="voodoo")

    def test_more_blocks_than_ranks_required(self, coronary_forest):
        import copy

        with pytest.raises(LoadBalanceError):
            balance_forest(
                copy.deepcopy(coronary_forest),
                coronary_forest.n_blocks + 1,
                strategy="round_robin",
            )
