"""Tests for the hierarchical timing tree (waLBerla TimingPool analog):
nested scope accounting, cross-rank reduction over virtual MPI,
counter-derived metrics, and the ``--profile`` CLI output shape."""

import json
import time

import pytest

from repro.comm.vmpi import VirtualMPI
from repro.core.timeloop import TimeLoop
from repro.perf.metrics import comm_bandwidth, mlups
from repro.perf.timing import (
    ReducedTimingTree,
    TimingTree,
    best_of,
    clear_timing_registry,
    get_timing_tree,
    reduce_over_comm,
    reduce_trees,
)


class TestNestedScopes:
    def test_nesting_and_counts(self):
        tree = TimingTree()
        for _ in range(3):
            with tree.scoped("outer"):
                with tree.scoped("inner"):
                    pass
                with tree.scoped("inner"):
                    pass
        outer = tree.node("outer")
        inner = tree.node("outer", "inner")
        assert outer.stats.calls == 3
        assert inner.stats.calls == 6
        # The child nests under the parent, not at top level.
        assert tree.node("inner") is None
        # Parent wall time includes its children's.
        assert outer.stats.total >= inner.stats.total
        assert outer.stats.min <= outer.stats.mean <= outer.stats.max

    def test_scope_reentry_after_exception(self):
        tree = TimingTree()
        with pytest.raises(RuntimeError):
            with tree.scoped("a"):
                raise RuntimeError("boom")
        # Stack unwound: new scopes land at the root again.
        with tree.scoped("b"):
            pass
        assert tree.node("a").stats.calls == 1
        assert tree.node("b") is not None
        assert tree.node("a", "b") is None

    def test_record_accounts_under_current_scope(self):
        tree = TimingTree()
        with tree.scoped("kernel"):
            tree.record("tier:vectorized", 0.25)
            tree.record("tier:vectorized", 0.75)
        node = tree.node("kernel", "tier:vectorized")
        assert node.stats.calls == 2
        assert node.stats.total == pytest.approx(1.0)
        assert node.stats.min == pytest.approx(0.25)
        assert node.stats.max == pytest.approx(0.75)

    def test_fraction_and_total(self):
        tree = TimingTree()
        tree.record("communication", 1.0)
        tree.record("kernel", 3.0)
        assert tree.total_seconds() == pytest.approx(4.0)
        assert tree.fraction("communication") == pytest.approx(0.25)
        assert tree.fraction("nonexistent") == 0.0

    def test_render_and_roundtrip(self):
        tree = TimingTree()
        with tree.scoped("sweep"):
            tree.record("sub", 0.5)
        tree.add_counter("cells_updated", 1000)
        text = tree.render()
        assert "sweep" in text and "sub" in text and "cells_updated" in text
        clone = TimingTree.from_dict(tree.to_dict())
        assert clone.node("sweep", "sub").stats.total == pytest.approx(0.5)
        assert clone.counter("cells_updated") == 1000

    def test_reset(self):
        tree = TimingTree()
        tree.record("a", 1.0)
        tree.add_counter("c", 5)
        tree.reset()
        assert tree.node("a") is None
        assert tree.counter("c") == 0.0

    def test_registry(self):
        clear_timing_registry()
        a = get_timing_tree("x")
        assert get_timing_tree("x") is a
        assert get_timing_tree("y") is not a
        clear_timing_registry()
        assert get_timing_tree("x") is not a


class TestReduction:
    def test_min_avg_max_over_four_ranks(self):
        trees = []
        durations = [1.0, 2.0, 3.0, 6.0]
        for d in durations:
            t = TimingTree()
            t.record("kernel", d)
            with t.scoped("communication"):
                t.record("pack", d / 10.0)
            trees.append(t)
        reduced = reduce_trees(trees)
        node = reduced.node("kernel")
        assert reduced.n_ranks == 4
        assert node.total_min == pytest.approx(1.0)
        assert node.total_max == pytest.approx(6.0)
        assert node.total_avg == pytest.approx(3.0)
        assert node.calls == 4
        pack = reduced.node("communication", "pack")
        assert pack.total_avg == pytest.approx(0.3)

    def test_partial_rank_participation(self):
        a = TimingTree()
        a.record("only_on_a", 2.0)
        b = TimingTree()
        b.record("shared", 1.0)
        a.record("shared", 3.0)
        reduced = reduce_trees([a, b])
        only = reduced.node("only_on_a")
        assert only.n_ranks == 1
        assert only.total_avg == pytest.approx(2.0)
        shared = reduced.node("shared")
        assert shared.n_ranks == 2
        assert shared.total_avg == pytest.approx(2.0)

    def test_counters_summed(self):
        trees = []
        for i in range(4):
            t = TimingTree()
            t.add_counter("cells_updated", 100 * (i + 1))
            trees.append(t)
        reduced = reduce_trees(trees)
        assert reduced.counters["cells_updated"] == pytest.approx(1000)

    def test_reduce_needs_trees(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            reduce_trees([])

    def test_reduce_over_vmpi_comm(self):
        """waLBerla's timing_pool.reduce(): gather + reduce over real
        (virtual) MPI ranks; exact min/avg/max on >= 4 ranks."""
        world = VirtualMPI(4)

        def program(comm):
            tree = TimingTree()
            tree.record("kernel", float(comm.rank + 1))
            tree.add_counter("cells_updated", 10.0)
            return reduce_over_comm(tree, comm, root=0)

        results = world.run(program)
        assert results[1] is None and results[2] is None and results[3] is None
        reduced = results[0]
        assert isinstance(reduced, ReducedTimingTree)
        node = reduced.node("kernel")
        assert node.total_min == pytest.approx(1.0)
        assert node.total_avg == pytest.approx(2.5)
        assert node.total_max == pytest.approx(4.0)
        assert reduced.counters["cells_updated"] == pytest.approx(40.0)

    def test_reduced_rows_and_fraction(self):
        t = TimingTree()
        t.record("communication", 1.0)
        t.record("kernel", 3.0)
        reduced = reduce_trees([t])
        assert reduced.fraction("communication") == pytest.approx(0.25)
        paths = [r["path"] for r in reduced.rows()]
        assert paths == ["communication", "kernel"]
        text = reduced.render()
        assert "min s" in text and "avg s" in text and "max s" in text


class TestDerivedMetrics:
    def test_counter_to_mlups(self):
        tree = TimingTree()
        tree.record("kernel", 2.0)
        tree.add_counter("cells_updated", 8_000_000)
        rate = mlups(tree.counter("cells_updated"), tree.node("kernel").stats.total)
        assert rate == pytest.approx(4.0)

    def test_bytes_to_bandwidth(self):
        tree = TimingTree()
        tree.record("communication", 0.5)
        tree.add_counter("comm.remote_bytes", 1024**2)
        bw = comm_bandwidth(
            tree.counter("comm.remote_bytes"),
            tree.node("communication").stats.total,
        )
        assert bw == pytest.approx(2 * 1024**2)
        assert comm_bandwidth(100.0, 0.0) == 0.0

    def test_best_of(self):
        calls = []

        def fn():
            calls.append(1)
            return "x"

        seconds, result = best_of(3, fn)
        assert len(calls) == 3 and result == "x" and seconds >= 0.0


class TestTimeLoopIntegration:
    def test_sweeps_record_into_tree(self):
        loop = TimeLoop()
        loop.add("a", lambda: None).add("b", lambda: time.sleep(0.001))
        loop.run(5)
        assert loop.tree.node("a").stats.calls == 5
        assert loop.tree.node("b").stats.calls == 5
        # Flat timings() view stays consistent with the tree.
        flat = loop.timings()
        assert set(flat) == {"a", "b"}
        assert flat["b"] == pytest.approx(
            loop.tree.node("b").stats.total, rel=0.5
        )
        assert "a" in loop.timing_report()

    def test_reset_clears_tree(self):
        loop = TimeLoop()
        loop.add("a", lambda: None)
        loop.run(2)
        loop.reset_timings()
        assert loop.tree.node("a") is None
        assert loop.timings()["a"] == 0.0

    def test_nested_subscopes_from_sweep(self):
        loop = TimeLoop()
        loop.add("comm", lambda: loop.tree.record("pack", 0.01))
        loop.run(3)
        assert loop.tree.node("comm", "pack").stats.calls == 3


class TestSimulationTrees:
    def test_single_block_kernel_tier_scope(self):
        import repro.flagdefs as fl
        from repro.core import Simulation
        from repro.lbm import NoSlip, TRT

        sim = Simulation(cells=(6, 6, 6), collision=TRT.from_tau(0.8))
        sim.flags.fill(fl.FLUID)
        sim.flags.data[0] = fl.NO_SLIP
        sim.flags.data[-1] = fl.NO_SLIP
        sim.add_boundary(NoSlip())
        sim.finalize()
        sim.run(3)
        tree = sim.timeloop.tree
        tier = tree.node("kernel", f"tier:{sim.kernel_name}")
        assert tier is not None and tier.stats.calls == 3
        assert tree.counter("cells_updated") > 0
        assert "tier:" in sim.timing_report()

    def test_distributed_comm_subscopes(self):
        from repro.balance import balance_forest
        from repro.blocks import SetupBlockForest
        from repro.comm import DistributedSimulation
        from repro.geometry import AABB
        from repro.lbm import NoSlip, TRT

        forest = SetupBlockForest.create(
            AABB((0, 0, 0), (2, 1, 1)), (2, 1, 1), (6, 6, 6)
        )
        balance_forest(forest, 2, strategy="round_robin")
        sim = DistributedSimulation(forest, TRT.from_tau(0.8))
        sim.run(3)
        tree = sim.timeloop.tree
        for sub in ("pack", "send/recv", "unpack", "local copy"):
            assert tree.node("communication", sub) is not None, sub
        assert tree.counter("comm.remote_bytes") > 0
        assert tree.counter("cells_updated") > 0
        assert 0.0 <= sim.comm_fraction() <= 1.0
        assert "communication" in sim.timing_report()


class TestProfileCli:
    def test_bare_profile_flag(self, capsys, tmp_path, monkeypatch):
        from repro.__main__ import main

        json_path = tmp_path / "prof.json"
        csv_path = tmp_path / "prof.csv"
        assert main([
            "--profile",
            "--profile-ranks", "2",
            "--profile-steps", "3",
            "--profile-json", str(json_path),
            "--profile-csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        # Reduced hierarchical tree with comm sub-scopes and fraction.
        assert "communication" in out
        assert "pack+send" in out
        assert "comm fraction" in out
        assert "min s" in out and "avg s" in out and "max s" in out
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == "repro.profile/1"
        assert payload["ranks"] == 2
        assert payload["timing"]["n_ranks"] == 2
        names = [c["name"] for c in payload["timing"]["root"]["children"]]
        assert "communication" in names and "kernel" in names
        assert "comm fraction" in payload["derived"]
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("path,depth,calls,total_min")

    def test_profile_with_cavity_command(self, capsys, tmp_path):
        from repro.__main__ import main

        json_path = tmp_path / "cav.json"
        assert main([
            "--profile", "--profile-json", str(json_path),
            "cavity", "--size", "6", "--steps", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "tier:" in out
        payload = json.loads(json_path.read_text())
        assert payload["scenario"].startswith("cavity")
        assert payload["timing"]["schema"] == "repro.timing-tree-reduced/1"

    def test_command_required_without_profile(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main([])


class TestSpmdProfileDriver:
    def test_profile_spmd_cavity_shape(self):
        from repro.harness import profile_spmd_cavity

        result = profile_spmd_cavity(ranks=2, steps=4)
        assert result.ranks == 2
        assert result.reduced.n_ranks == 2
        assert result.reduced.node("communication", "recv+unpack") is not None
        assert result.reduced.node("kernel") is not None
        assert "comm fraction" in result.derived
        assert 0.0 <= result.derived["comm fraction"] <= 1.0
        assert result.reduced.counters["cells_updated"] > 0
        text = result.report()
        assert "per-sweep breakdown" in text
